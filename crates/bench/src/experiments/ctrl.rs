//! `ext-ctrl`: the online control plane closing the plan→serve loop.
//!
//! One compressed serving "day" — a diurnal ramp with a flash crowd at
//! midday — is replayed against three deployments of OLMoE-1B-7B/H100:
//!
//! * **Static ladder** — fixed fleets of the pinned single-device
//!   layout's best completion at 2..8 replicas. Small fleets miss the
//!   TTFT SLO during the flash crowd; big fleets meet it but pay peak
//!   capacity all day.
//! * **Planner static pick** — the configuration `moe-plan` recommends
//!   for the day's *average* load, anywhere on the grid: the honest
//!   offline answer, sized for the mean, blind to the peak.
//! * **Controlled run** — the same day under [`moe_ctrl::Controller`]:
//!   the fleet starts on *yesterday's plan* (fp16 weights on the same
//!   pinned device layout, night-sized), the warm-started re-planner —
//!   restricted to precision and replica-count moves, since layout
//!   changes re-carve device groups — discovers the cheaper fp8
//!   generation and rolls it out behind a canary split, burn-triggered
//!   scale-out rides the flash crowd on discounted spot capacity (which
//!   the fault injector reclaims with seeded exponential lifetimes),
//!   and sustained calm drains back down. Cost is integrated per
//!   replica lifetime.
//!
//! The headline: the controller holds the SLO attainment target while
//! paying a strictly lower cost per token than the cheapest static
//! fleet that also holds it (asserted in this module's tests and quoted
//! in `EXPERIMENTS.md`).

use moe_cluster::workload::RequestTrace;
use moe_cluster::{
    generate, ClusterConfig, ClusterReport, ClusterSim, FaultPlan, RoutePolicy, TenantSpec,
    WorkloadSpec,
};
use moe_ctrl::{Controller, ControllerConfig, Decision};
use moe_plan::score::build_engine;
use moe_plan::{
    search, CandidateConfig, CandidateScore, FleetSpec, PlannerSpec, ReachableSpace, SearchMode,
    SearchSpace, SloSpec, WorkloadSketch,
};
use moe_runtime::simserver::scheduler_config_for;
use moe_tensor::Precision;
use moe_trace::{Category, Tracer, BENCH_TRACK};

use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, secs, ExperimentReport, Table};

/// Registry handle.
pub struct ExtCtrl;

impl Experiment for ExtCtrl {
    fn id(&self) -> &'static str {
        "ext-ctrl"
    }
    fn title(&self) -> &'static str {
        "Extension: Online Control Plane (diurnal + flash-crowd day, OLMoE-1B-7B/H100)"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast, ctx.tracer)
    }
}

/// TTFT bound for the day's service-level objective.
pub const CTRL_TTFT_SLO_S: f64 = 0.1;
/// Inter-token-latency bound (fed to the controller's second monitor).
/// Chunked prefill makes p99 ITL *worst* at moderate load (sparse
/// decode batches stall behind incoming prefills), so the bound is set
/// to what the engine family sustains across the whole load range —
/// tighter bounds would have the ITL monitor burning on every
/// deployment, static or controlled.
pub const CTRL_ITL_SLO_S: f64 = 0.2;
/// Attainment target: a deployment "holds the SLO" when at least this
/// fraction of submitted requests sees TTFT within the bound.
pub const CTRL_TARGET_ATTAINMENT: f64 = 0.95;

/// Every run of the day replays this seed.
const CTRL_SEED: u64 = 0xC791;

/// The compressed day: (offered qps, nominal duration in seconds).
/// Diurnal ramp up and down with a 3200-qps flash crowd at midday. The
/// flash has a steep onset shoulder (real crowds arrive over seconds,
/// not in one tick) — long enough for an honest provisioning delay to
/// matter, short enough that a fleet sized for the plateau still melts.
/// Calibrated on the single-device fp8 shape: ~530 qps per device, so
/// two replicas carry the night, the flash needs at least six.
const DAY_PHASES: &[(f64, f64)] = &[
    (400.0, 20.0),
    (700.0, 20.0),
    (1000.0, 20.0),
    (1800.0, 10.0),
    (3200.0, 15.0),
    (1000.0, 20.0),
    (600.0, 20.0),
    (300.0, 25.0),
];

fn tenant() -> TenantSpec {
    TenantSpec::uniform("web", 1.0, (128, 256), (16, 64))
}

/// Materialize the day's trace: one Poisson segment per phase, shifted
/// to its nominal offset and merged into a single arrival stream. The
/// fast preset compresses every phase 5x.
fn day_trace(fast: bool) -> RequestTrace {
    let scale = if fast { 0.2 } else { 1.0 };
    let mut parts = Vec::new();
    let mut offset = 0.0;
    for (i, &(qps, dur)) in DAY_PHASES.iter().enumerate() {
        let dur = dur * scale;
        let n = (qps * dur).round() as usize;
        let seg = generate(
            &WorkloadSpec::poisson(qps, n.max(1), tenant()),
            CTRL_SEED ^ ((i as u64) << 8),
        );
        parts.push(seg.shifted(offset));
        offset += dur;
    }
    RequestTrace::merge(parts)
}

/// Nominal day length (s) — fault horizons key off this.
fn day_len(fast: bool) -> f64 {
    let scale = if fast { 0.2 } else { 1.0 };
    DAY_PHASES.iter().map(|&(_, d)| d * scale).sum()
}

/// Mean offered load over the day (qps), what an offline planner sizing
/// for the average would assume.
fn mean_qps(fast: bool) -> f64 {
    let total: f64 = DAY_PHASES
        .iter()
        .map(|&(q, d)| q * d * if fast { 0.2 } else { 1.0 })
        .sum();
    total / day_len(fast)
}

fn sketch(qps: f64) -> WorkloadSketch {
    WorkloadSketch {
        offered_qps: qps,
        mean_input: 192,
        mean_output: 40,
        max_seq: 2048,
    }
}

fn planner_spec(space: SearchSpace) -> PlannerSpec {
    PlannerSpec {
        model: moe_model::registry::olmoe_1b_7b(),
        draft: None,
        fleet: FleetSpec::h100(12),
        workload: WorkloadSpec::poisson(200.0, 64, tenant()),
        slo: SloSpec::latency(CTRL_TTFT_SLO_S, CTRL_ITL_SLO_S),
        space,
        mode: SearchMode::Exhaustive,
        refine_top_k: 1,
        seed: CTRL_SEED,
    }
}

/// The study's preference order over analytic candidates: SLO-meeting
/// first, then the fewest devices (devices are the capital knob; the
/// analytic per-token cost rewards deeper fleets for batching and would
/// otherwise size every pick at the fleet cap), then cheapest.
fn candidate_rank(c: &CandidateScore) -> (u8, usize, u64, String) {
    (
        u8::from(!c.meets_slo),
        c.config.devices(),
        c.cost_per_token_device_s.to_bits(),
        c.label.clone(),
    )
}

fn best_of(frontier: &[CandidateScore]) -> &CandidateScore {
    frontier
        .iter()
        .min_by_key(|c| candidate_rank(c))
        .expect("planner frontier is never empty")
}

fn cluster_config(replicas: usize) -> ClusterConfig {
    ClusterConfig {
        replicas,
        policy: RoutePolicy::LeastOutstanding,
        seed: CTRL_SEED,
        prefix_capacity: 0,
        ..ClusterConfig::default()
    }
}

/// Run one static fleet of `replicas` copies of `config`'s shape.
fn run_static(
    spec: &PlannerSpec,
    config: &CandidateConfig,
    replicas: usize,
    fast: bool,
) -> ClusterReport {
    let (engine, _) = build_engine(spec, config).expect("static shape is feasible");
    let mut sched = scheduler_config_for(&engine, 2048);
    sched.max_batched_tokens = config.max_batch_tokens;
    let sim = ClusterSim::new(
        &engine,
        sched,
        cluster_config(replicas),
        FaultPlan::none(),
        day_trace(fast),
    );
    sim.run(&mut Tracer::disabled())
}

/// Controller tuning for the day. The budget is `1 − target`: 5%.
/// Provision/migration tails shrink with the fast preset so the control
/// loop stays proportional to the compressed day.
fn controller_config(fast: bool) -> ControllerConfig {
    let mut cc = ControllerConfig::for_slo(CTRL_TTFT_SLO_S, CTRL_ITL_SLO_S);
    cc.target_attainment = CTRL_TARGET_ATTAINMENT;
    cc.window_ticks = 3;
    cc.upscale_burn = 0.5;
    cc.downscale_burn = 0.15;
    cc.calm_ticks = 6;
    cc.cooldown_ticks = 1;
    cc.min_replicas = 2;
    cc.max_replicas = 10;
    cc.max_scale_step = 6;
    cc.provision_delay_s = if fast { 1.5 } else { 3.0 };
    cc.migration_s = if fast { 1.5 } else { 3.0 };
    cc.spot_scaleout = true;
    cc.spot_price_factor = 0.35;
    cc.replan_every_ticks = 1;
    cc.canary_fraction = 0.15;
    cc.canary_ticks = 4;
    cc.promote_burn = 1.0;
    cc
}

/// Seconds of simulated time between control ticks: the cadence scales
/// with the 5x day compression so every tick-denominated knob (burn
/// windows, calm streaks, canary verdicts) covers the same fraction of
/// each phase in both presets.
fn ctrl_interval(fast: bool) -> f64 {
    if fast {
        0.5
    } else {
        2.5
    }
}

/// The controlled day. The fleet starts on yesterday's fp16 plan (the
/// same pinned device layout as `day_shape`, sized for the night); the
/// re-planner may change precision and replica count but not the
/// parallel layout — plan changes mean re-carving device groups, which
/// this operator's reconfiguration policy reserves for offline windows.
fn run_controlled(
    fast: bool,
    day_shape: &CandidateConfig,
    tracer: &mut Tracer,
) -> (ClusterReport, Vec<Decision>) {
    // Yesterday's offline answer: fp16 weights on the pinned layout,
    // sized for the calm night-time load.
    let mut fp16_space = SearchSpace::minimal();
    fp16_space.precisions = vec![Precision::F16];
    let fp16_spec = planner_spec(fp16_space);
    let night = search(&fp16_spec, &sketch(DAY_PHASES[0].0));
    let incumbent = night
        .scored
        .iter()
        .filter(|c| c.config.plan == day_shape.plan)
        .min_by_key(|c| candidate_rank(c))
        .expect("fp16 grid covers the pinned layout")
        .config;

    let full_spec = planner_spec(SearchSpace::minimal());
    let (engine, _) = build_engine(&full_spec, &incumbent).expect("incumbent is feasible");
    let mut sched = scheduler_config_for(&engine, 2048);
    sched.max_batched_tokens = incumbent.max_batch_tokens;

    let mut reach = ReachableSpace::rolling(12);
    reach.allow_plan_change = false;
    let ctl = Controller::new(controller_config(fast), engine.clone(), sched).with_replanner(
        full_spec,
        sketch(mean_qps(fast)),
        incumbent,
        reach,
    );
    let log = ctl.log_handle();

    // Spot reclaims on the deep scale-out slots: seeded exponential
    // lifetimes, by machine slot, exactly like a cloud provider. The
    // steady fleet (low slots) is on-demand and never reclaimed; the
    // flash-crowd scale-out lands in the reclaimable range.
    let spot_slots: Vec<usize> = (8..20).collect();
    let faults = FaultPlan::spot_preemptions(CTRL_SEED, &spot_slots, day_len(fast), 80.0);

    let start = incumbent.replicas.max(2);
    let sim = ClusterSim::new(
        &engine,
        sched,
        cluster_config(start),
        faults,
        day_trace(fast),
    )
    .with_controller(Box::new(ctl), ctrl_interval(fast));
    let report = sim.run(tracer);
    let decisions = log.borrow().clone();
    (report, decisions)
}

fn report_row(label: &str, r: &ClusterReport) -> Vec<String> {
    vec![
        label.to_string(),
        r.devices.to_string(),
        r.submitted.to_string(),
        r.completed.to_string(),
        secs(r.ttft.p99_s),
        num(r.slo_attainment(CTRL_TTFT_SLO_S)),
        num(r.device_seconds),
        num(r.cost_per_token_device_s * 1e6),
        r.reconfigs.to_string(),
        r.preemptions.to_string(),
    ]
}

const COLUMNS: &[&str] = &[
    "deployment",
    "devices(peak)",
    "submitted",
    "completed",
    "p99 TTFT",
    "SLO@100ms",
    "device-s",
    "dev-s/Mtok",
    "reconfigs",
    "preempts",
];

/// Everything the report and the tests need from one full run of the
/// study.
pub struct CtrlOutcome {
    /// `(replicas, report)` per static ladder rung.
    pub ladder: Vec<(usize, ClusterReport)>,
    /// Label of the planner's static pick.
    pub planner_label: String,
    /// The planner pick's measured day.
    pub planner_report: ClusterReport,
    /// The controlled day.
    pub controlled: ClusterReport,
    /// The controller's decision log.
    pub decisions: Vec<Decision>,
}

impl CtrlOutcome {
    /// Cheapest static ladder rung holding the attainment target, if any.
    pub fn best_static(&self) -> Option<&(usize, ClusterReport)> {
        self.ladder
            .iter()
            .filter(|(_, r)| r.slo_attainment(CTRL_TTFT_SLO_S) >= CTRL_TARGET_ATTAINMENT)
            .min_by(|(_, a), (_, b)| {
                a.cost_per_token_device_s
                    .total_cmp(&b.cost_per_token_device_s)
            })
    }
}

/// Run the full study: ladder (on the work-stealing pool), planner
/// pick, controlled day.
pub fn run_study(fast: bool, tracer: &mut Tracer) -> CtrlOutcome {
    let full_spec = planner_spec(SearchSpace::minimal());
    let day_outcome = search(&full_spec, &sketch(mean_qps(fast)));
    // The honest offline answer for the day's mean load, anywhere on
    // the grid.
    let planner_best = best_of(&day_outcome.frontier);
    let planner_label = planner_best.label.clone();
    let planner_config = planner_best.config;
    // The ladder and the controlled run live on the pinned single-device
    // layout (layout trade-offs are `ext-plan`'s subject; the control
    // story is precision and fleet size): its best completion at the
    // day's mean load.
    let shape = day_outcome
        .scored
        .iter()
        .filter(|c| c.config.plan.degree == 1)
        .min_by_key(|c| candidate_rank(c))
        .expect("grid includes the single-device layout")
        .config;

    let rungs: Vec<usize> = if fast {
        vec![2, 4, 6]
    } else {
        vec![2, 3, 4, 6, 8]
    };
    let ladder: Vec<(usize, ClusterReport)> = {
        let spec = &full_spec;
        moe_par::map_collect(rungs.len(), |i| {
            (rungs[i], run_static(spec, &shape, rungs[i], fast))
        })
    };
    let planner_report = run_static(&full_spec, &planner_config, planner_config.replicas, fast);
    let (controlled, decisions) = run_controlled(fast, &shape, tracer);
    CtrlOutcome {
        ladder,
        planner_label,
        planner_report,
        controlled,
        decisions,
    }
}

fn decision_cells(d: &Decision) -> Vec<String> {
    match d {
        Decision::ScaleUp {
            t_s,
            paid_before,
            added,
            burn,
            queue_depth,
        } => vec![
            secs(*t_s),
            "scale-up".into(),
            format!("+{added} replica(s) onto {paid_before} paid"),
            format!("burn {} queue {queue_depth}", num(*burn)),
        ],
        Decision::ScaleDown { t_s, replica, burn } => vec![
            secs(*t_s),
            "scale-down".into(),
            format!("drain replica {replica}"),
            format!("burn {}", num(*burn)),
        ],
        Decision::RolloutStart {
            t_s,
            generation,
            label,
            replicas,
        } => vec![
            secs(*t_s),
            "rollout".into(),
            format!("gen {generation}: {replicas}x {label}"),
            "canary split".into(),
        ],
        Decision::Promote {
            t_s,
            generation,
            drained,
        } => vec![
            secs(*t_s),
            "promote".into(),
            format!("gen {generation} serving all traffic"),
            format!("{drained} old replicas drained"),
        ],
        Decision::Rollback { t_s, generation } => vec![
            secs(*t_s),
            "rollback".into(),
            format!("gen {generation} drained"),
            "burn too high".into(),
        ],
    }
}

fn build(fast: bool, tracer: &mut Tracer) -> ExperimentReport {
    let outcome = run_study(fast, tracer);
    if tracer.is_enabled() {
        tracer.span_with(
            BENCH_TRACK,
            Category::Bench,
            "ext-ctrl controlled day",
            0.0,
            outcome.controlled.makespan_s,
            vec![
                ("reconfigs", (outcome.controlled.reconfigs as f64).into()),
                (
                    "preemptions",
                    (outcome.controlled.preemptions as f64).into(),
                ),
            ],
        );
        tracer.advance(outcome.controlled.makespan_s);
    }

    let mut report = ExperimentReport::new(
        "ext-ctrl",
        "Extension: Online Control Plane (diurnal + flash-crowd day, OLMoE-1B-7B/H100)",
    );

    let mut t = Table::new(
        "One serving day, three ways (diurnal ramp + 3200-qps flash crowd)",
        COLUMNS,
    );
    for (replicas, r) in &outcome.ladder {
        t.row(report_row(&format!("static x{replicas}"), r));
    }
    t.row(report_row(
        &format!("planner pick ({})", outcome.planner_label),
        &outcome.planner_report,
    ));
    t.row(report_row("controlled", &outcome.controlled));
    report.table(t);

    let controlled_att = outcome.controlled.slo_attainment(CTRL_TTFT_SLO_S);
    let controlled_cost = outcome.controlled.cost_per_token_device_s;
    match outcome.best_static() {
        Some((replicas, r)) => {
            let static_cost = r.cost_per_token_device_s;
            let pct = (1.0 - controlled_cost / static_cost) * 100.0;
            let side = if pct >= 0.0 { "below" } else { "above" };
            report.note(format!(
                "Headline: the controller holds the SLO (attainment {} at p99 TTFT {} vs \
                 target {CTRL_TARGET_ATTAINMENT} @ {CTRL_TTFT_SLO_S} s) at {} dev-s/Mtok — \
                 {}% {side} the cheapest SLO-holding static fleet (x{replicas} at {} \
                 dev-s/Mtok). Static fleets below that size miss the SLO during the flash \
                 crowd; larger ones pay peak capacity all day.",
                num(controlled_att),
                secs(outcome.controlled.ttft.p99_s),
                num(controlled_cost * 1e6),
                num(pct.abs()),
                num(static_cost * 1e6),
            ));
        }
        None => {
            report.note(format!(
                "Headline: no static ladder rung holds the attainment target \
                 {CTRL_TARGET_ATTAINMENT}; the controller reaches attainment {} at {} \
                 dev-s/Mtok.",
                num(controlled_att),
                num(controlled_cost * 1e6),
            ));
        }
    }

    let mut t = Table::new(
        "Controller decision log (simulated time)",
        &["t", "decision", "what", "trigger"],
    );
    for d in &outcome.decisions {
        t.row(decision_cells(d));
    }
    report.table(t);
    report.note(
        "The controlled fleet starts on yesterday's fp16 plan (same pinned device \
         layout, night-sized): the warm-started re-planner — allowed to move precision \
         and replica count, not the layout — migrates it to the cheaper fp8 generation \
         behind a canary split with a make-before-break cutover, burn-triggered \
         scale-out rides the flash crowd on 0.35x-priced spot capacity (reclaimed by \
         the seeded fault injector), and sustained calm drains back to the floor. Cost \
         integrates per-replica lifetimes with price factors; devices(peak) is the \
         concurrent high-water mark.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_beats_every_slo_holding_static_fleet() {
        let outcome = run_study(true, &mut Tracer::disabled());
        let att = outcome.controlled.slo_attainment(CTRL_TTFT_SLO_S);
        assert!(
            att >= CTRL_TARGET_ATTAINMENT,
            "controller misses the SLO: attainment {att}"
        );
        let (replicas, best) = outcome.best_static().expect("some static rung holds SLO");
        assert!(
            outcome.controlled.cost_per_token_device_s < best.cost_per_token_device_s,
            "controller cost {} not below best static x{replicas} cost {}",
            outcome.controlled.cost_per_token_device_s,
            best.cost_per_token_device_s
        );
        // The smallest rung must demonstrate the other side of the
        // trade-off: missing the SLO.
        let (_, smallest) = &outcome.ladder[0];
        assert!(
            smallest.slo_attainment(CTRL_TTFT_SLO_S) < CTRL_TARGET_ATTAINMENT,
            "the x2 static fleet should miss the SLO through the flash crowd"
        );
        // Every mechanism fired: reconfigurations and spot reclaims.
        assert!(outcome.controlled.reconfigs > 0);
        assert!(!outcome.decisions.is_empty());
    }

    #[test]
    fn fast_report_is_populated() {
        let report = build(true, &mut Tracer::disabled());
        assert_eq!(report.id, "ext-ctrl");
        assert_eq!(report.tables.len(), 2);
        assert!(report.tables[0].rows.len() >= 5);
        let rendered = report.render();
        assert!(rendered.contains("controlled"));
        assert!(rendered.contains("Headline"));
    }
}
