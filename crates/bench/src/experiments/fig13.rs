//! Figure 13: TP/PP/EP parallelism scaling for Mixtral-8x7B and
//! OLMoE-1B-7B on 1-4 H100s.

use moe_gpusim::parallel::ParallelPlan;
use moe_model::registry::{mixtral_8x7b, olmoe_1b_7b};
use moe_model::ModelConfig;
use moe_tensor::Precision;

use crate::common::place_with_plan;
use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, tput_cell, ExperimentReport, Table};

pub const BATCH: usize = 16;
pub const IN_LEN: usize = 1024;
pub const OUT_LEN: usize = 1024;

/// GPU counts swept.
pub const GPU_COUNTS: [usize; 3] = [1, 2, 4];

/// One model's scaling results: `(plan label, gpus, Option<tok/s>)`.
pub fn sweep(base: &ModelConfig, precision: Precision) -> Vec<(String, usize, Option<f64>)> {
    let mut out = Vec::new();
    for &gpus in &GPU_COUNTS {
        let plans = if gpus == 1 {
            vec![ParallelPlan::single()]
        } else {
            ParallelPlan::fig13_plans(gpus)
        };
        for plan in plans {
            let label = plan.label();
            let result = place_with_plan(base, precision, plan, true)
                .ok()
                .and_then(|m| {
                    m.run(
                        BATCH,
                        IN_LEN,
                        OUT_LEN,
                        &mut moe_trace::Tracer::disabled(),
                        0,
                    )
                    .ok()
                })
                .map(|r| r.throughput_tok_s);
            out.push((label, gpus, result));
        }
    }
    out
}

/// Lookup helper (by plan prefix "TP"/"TP+EP"/"PP"/"PP+EP" and gpu count).
pub fn at(
    sweep: &[(String, usize, Option<f64>)],
    mode: &str,
    ep: bool,
    gpus: usize,
) -> Option<f64> {
    let want = if gpus == 1 {
        "TP1".to_string()
    } else if ep {
        format!("{mode}{gpus}+EP")
    } else {
        format!("{mode}{gpus}")
    };
    sweep
        .iter()
        .find(|s| s.0 == want && s.1 == gpus)
        .and_then(|s| s.2)
}

/// Build the report.
/// Registry handle.
pub struct Fig13;

impl Experiment for Fig13 {
    fn id(&self) -> &'static str {
        "fig13"
    }
    fn title(&self) -> &'static str {
        "Figure 13: TP / PP / EP Scaling on 1-4 H100s (batch 16, in/out 2048)"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

fn build(_fast: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(Fig13.id(), Fig13.title());
    // Mixtral at fp16 cannot exist on one GPU; the 1-GPU baseline (and all
    // its points, for a fair curve) uses fp8 weights. OLMoE runs fp16.
    for (base, precision) in [
        (mixtral_8x7b(), Precision::Fp8E4M3),
        (olmoe_1b_7b(), Precision::F16),
    ] {
        let s = sweep(&base, precision);
        let mut t = Table::new(
            format!("{} ({}) — throughput (tok/s)", base.name, precision.label()),
            &["Placement", "GPUs", "tok/s", "Speedup vs 1 GPU"],
        );
        let single = at(&s, "TP", false, 1);
        for (label, gpus, v) in &s {
            let speedup = match (v, single) {
                (Some(v), Some(s1)) => num(v / s1),
                _ => "-".into(),
            };
            t.row(vec![
                label.clone(),
                gpus.to_string(),
                tput_cell(*v),
                speedup,
            ]);
        }
        report.table(t);
    }
    report.note(
        "TP without EP scales best (paper: >2x from 1 to 4 GPUs); TP+EP scales less; \
         PP+EP improves minimally; PP alone is nearly flat.",
    );
    report.note(
        "A single-GPU Mixtral-8x7B baseline requires 8-bit weights (94 GB at fp16); the \
         whole Mixtral curve therefore runs fp8 for internal consistency.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixtral_sweep() -> Vec<(String, usize, Option<f64>)> {
        sweep(&mixtral_8x7b(), Precision::Fp8E4M3)
    }

    #[test]
    fn tp_scales_over_2x_on_4_gpus() {
        let s = mixtral_sweep();
        let single = at(&s, "TP", false, 1).unwrap();
        let tp4 = at(&s, "TP", false, 4).unwrap();
        assert!(tp4 / single > 2.0, "speedup {}", tp4 / single);
    }

    #[test]
    fn tp_beats_tp_ep_beats_pp() {
        for (base, p) in [
            (mixtral_8x7b(), Precision::Fp8E4M3),
            (olmoe_1b_7b(), Precision::F16),
        ] {
            let s = sweep(&base, p);
            let tp4 = at(&s, "TP", false, 4).unwrap();
            let tp4ep = at(&s, "TP", true, 4).unwrap();
            let pp4ep = at(&s, "PP", true, 4).unwrap();
            let pp4 = at(&s, "PP", false, 4).unwrap();
            assert!(tp4 > tp4ep, "{}: TP4 {tp4} vs TP4+EP {tp4ep}", base.name);
            assert!(tp4ep > pp4, "{}: TP4+EP {tp4ep} vs PP4 {pp4}", base.name);
            assert!(
                pp4ep >= pp4 * 0.95,
                "{}: PP4+EP {pp4ep} vs PP4 {pp4}",
                base.name
            );
        }
    }

    #[test]
    fn pp_nearly_flat() {
        let s = mixtral_sweep();
        let single = at(&s, "TP", false, 1).unwrap();
        let pp4 = at(&s, "PP", false, 4).unwrap();
        assert!(pp4 / single < 1.5, "PP speedup {}", pp4 / single);
    }

    #[test]
    fn every_plan_produced_a_result() {
        // fp8 Mixtral fits everywhere in this sweep; no OOM cells.
        let s = mixtral_sweep();
        assert_eq!(s.len(), 1 + 4 + 4);
        assert!(s.iter().all(|p| p.2.is_some()), "{s:?}");
    }
}
