//! Figure 1: layer-wise total and active parameter breakdown for
//! Mixtral-8x7B, OLMoE-1B-7B and Qwen1.5-MoE.

use moe_model::params::{human_params, ParamBreakdown};
use moe_model::registry::{mixtral_8x7b, olmoe_1b_7b, qwen15_moe_a27b};
use moe_model::ModelConfig;

use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, ExperimentReport, Table};

/// Registry handle.
pub struct Fig01;

impl Experiment for Fig01 {
    fn id(&self) -> &'static str {
        "fig1"
    }
    fn title(&self) -> &'static str {
        "Figure 1: Layer-wise Total and Active Parameter Breakdown"
    }
    fn run(&self, _ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build()
    }
}

/// The three models Figure 1 plots.
pub fn fig1_models() -> Vec<ModelConfig> {
    vec![mixtral_8x7b(), olmoe_1b_7b(), qwen15_moe_a27b()]
}

/// Build the report.
fn build() -> ExperimentReport {
    let mut report = ExperimentReport::new(Fig01.id(), Fig01.title());
    for m in fig1_models() {
        let b = ParamBreakdown::of(&m);
        let mut t = Table::new(
            format!("{} (per layer)", m.name),
            &["Component", "Total", "Active", "Share of layer"],
        );
        // All layers are identical in these models; show layer 0 and the
        // whole-model aggregates.
        let lp = b.layers[0];
        let total = lp.total() as f64;
        let mut push = |name: &str, tot: u64, act: u64| {
            t.row(vec![
                name.into(),
                human_params(tot),
                human_params(act),
                format!("{}%", num(100.0 * tot as f64 / total)),
            ]);
        };
        push("attention", lp.attention, lp.attention);
        push("router", lp.router, lp.router);
        push("routed experts", lp.experts_total, lp.experts_active);
        push("shared experts", lp.shared_experts, lp.shared_experts);
        report.table(t);

        let mut agg = Table::new(
            format!("{} (whole model)", m.name),
            &["Total params", "Active params", "MoE fraction"],
        );
        agg.row(vec![
            human_params(b.total()),
            human_params(b.active()),
            format!("{}%", num(100.0 * b.moe_fraction())),
        ]);
        report.table(agg);
    }
    report.note(
        "Reproduces the figure's claim: MoE (expert) parameters dominate both total and \
         active parameter counts in every layer of all three models.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_models_two_tables_each() {
        let r = build();
        assert_eq!(r.tables.len(), 6);
    }

    #[test]
    fn moe_dominates_every_model() {
        for m in fig1_models() {
            let b = ParamBreakdown::of(&m);
            assert!(b.moe_fraction() > 0.75, "{}", m.name);
            assert!(b.layers[0].moe_fraction() > 0.75, "{}", m.name);
        }
    }

    #[test]
    fn active_share_smaller_for_sparser_models() {
        // OLMoE activates 8/64 experts; Mixtral 2/8. Active/total expert
        // ratio must reflect that.
        let olmoe = ParamBreakdown::of(&olmoe_1b_7b());
        let mixtral = ParamBreakdown::of(&mixtral_8x7b());
        let ratio = |b: &ParamBreakdown| {
            b.components.experts_active as f64 / b.components.experts_total as f64
        };
        assert!((ratio(&olmoe) - 8.0 / 64.0).abs() < 1e-9);
        assert!((ratio(&mixtral) - 2.0 / 8.0).abs() < 1e-9);
    }
}
