//! Figure 11: impact of intra- and inter-expert pruning on OLMoE-1B-7B and
//! Qwen1.5-MoE-A2.7B — throughput vs TopK per pruning configuration,
//! batch 16, in/out 2048, 4 H100s.

use moe_gpusim::parallel::ParallelPlan;
use moe_model::prune::{PruneKind, PruneSpec, PAPER_PRUNE_RATIOS};
use moe_model::registry::{olmoe_1b_7b, qwen15_moe_a27b};
use moe_model::ModelConfig;
use moe_tensor::Precision;

use crate::common::place_with_plan;
use crate::experiment::{ExpCtx, Experiment};
use crate::report::{tput_cell, ExperimentReport, Table};

pub const BATCH: usize = 16;
pub const IN_LEN: usize = 1024;
pub const OUT_LEN: usize = 1024;

/// One measured point.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneResult {
    pub model: String,
    /// `None` = unpruned baseline.
    pub spec: Option<PruneSpec>,
    pub top_k: usize,
    pub throughput: Option<f64>,
}

fn label(spec: &Option<PruneSpec>) -> String {
    match spec {
        None => "baseline".to_string(),
        Some(s) => format!("{} {}%", s.kind.label(), (s.ratio * 100.0).round() as usize),
    }
}

/// All pruning configurations of the figure: baseline plus
/// {inter, intra} x {12.5, 25, 50}%.
pub fn prune_specs(fast: bool) -> Vec<Option<PruneSpec>> {
    let ratios: &[f64] = if fast {
        &[0.125, 0.50]
    } else {
        &PAPER_PRUNE_RATIOS
    };
    let mut v = vec![None];
    for &kind in &[PruneKind::InterExpert, PruneKind::IntraExpert] {
        for &r in ratios {
            v.push(Some(PruneSpec::new(kind, r)));
        }
    }
    v
}

/// Sweep one base model.
pub fn sweep(base: &ModelConfig, fast: bool) -> Vec<PruneResult> {
    let baseline_k = base.moe.as_ref().expect("MoE model").top_k;
    let topks: Vec<usize> = if fast {
        vec![1, baseline_k]
    } else {
        // The paper evaluates TopK from 1 up to the pretrained value.
        let mut v: Vec<usize> = [1usize, 2, 4, 8]
            .into_iter()
            .filter(|&k| k <= baseline_k)
            .collect();
        if !v.contains(&baseline_k) {
            v.push(baseline_k);
        }
        v
    };
    let mut out = Vec::new();
    for spec in prune_specs(fast) {
        let cfg = match &spec {
            None => base.clone(),
            Some(s) => s.apply(base),
        };
        for &k in &topks {
            let cfg_k = cfg.with_top_k(k);
            let model = place_with_plan(&cfg_k, Precision::F16, ParallelPlan::tensor(4), true)
                .expect("valid plan");
            out.push(PruneResult {
                model: base.name.clone(),
                spec,
                top_k: k.min(cfg.moe.as_ref().expect("MoE").num_experts),
                throughput: model
                    .run(
                        BATCH,
                        IN_LEN,
                        OUT_LEN,
                        &mut moe_trace::Tracer::disabled(),
                        0,
                    )
                    .ok()
                    .map(|r| r.throughput_tok_s),
            });
        }
    }
    out
}

/// Lookup helper.
pub fn at(results: &[PruneResult], spec: &Option<PruneSpec>, k: usize) -> Option<f64> {
    results
        .iter()
        .find(|r| r.spec == *spec && r.top_k == k)
        .and_then(|r| r.throughput)
}

/// Build the report.
/// Registry handle.
pub struct Fig11;

impl Experiment for Fig11 {
    fn id(&self) -> &'static str {
        "fig11"
    }
    fn title(&self) -> &'static str {
        "Figure 11: Intra vs Inter Expert Pruning (batch 16, in/out 2048, 4xH100)"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

fn build(fast: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(Fig11.id(), Fig11.title());
    for base in [olmoe_1b_7b(), qwen15_moe_a27b()] {
        let results = sweep(&base, fast);
        let mut topks: Vec<usize> = results.iter().map(|r| r.top_k).collect();
        topks.sort_unstable();
        topks.dedup();
        let mut cols = vec!["Pruning".to_string()];
        cols.extend(topks.iter().map(|k| format!("TopK={k}")));
        let mut t = Table::new(
            format!("{} — throughput (tok/s)", base.name),
            &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for spec in prune_specs(fast) {
            let mut row = vec![label(&spec)];
            for &k in &topks {
                row.push(tput_cell(at(&results, &spec, k)));
            }
            t.row(row);
        }
        report.table(t);
    }
    report.note(
        "Throughput falls as TopK grows in every configuration; 50% pruning gives clear \
         speedups, while 12.5%/25% intra-expert pruning can *reduce* throughput when the \
         pruned FFN dimension falls off the kernel tile quantum — the paper's inverse \
         effect.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_percent_pruning_speeds_up() {
        for base in [olmoe_1b_7b(), qwen15_moe_a27b()] {
            let rs = sweep(&base, true);
            let k = base.moe.as_ref().unwrap().top_k;
            let baseline = at(&rs, &None, k).unwrap();
            for kind in [PruneKind::InterExpert, PruneKind::IntraExpert] {
                let pruned = at(&rs, &Some(PruneSpec::new(kind, 0.50)), k).unwrap();
                assert!(
                    pruned > baseline,
                    "{} {kind:?}: {baseline} vs {pruned}",
                    base.name
                );
            }
        }
    }

    #[test]
    fn mild_intra_pruning_can_hurt_olmoe() {
        // The paper's inverse effect: 12.5% intra-expert pruning on OLMoE
        // (1024 -> 896, off the 256 tile quantum) reduces throughput.
        let rs = sweep(&olmoe_1b_7b(), true);
        let k = 8;
        let baseline = at(&rs, &None, k).unwrap();
        let mild = at(&rs, &Some(PruneSpec::new(PruneKind::IntraExpert, 0.125)), k).unwrap();
        assert!(mild < baseline, "baseline {baseline} vs mild-pruned {mild}");
    }

    #[test]
    fn throughput_decreases_with_topk_in_all_configs() {
        let rs = sweep(&olmoe_1b_7b(), true);
        for spec in prune_specs(true) {
            let k1 = at(&rs, &spec, 1);
            let k8 = at(&rs, &spec, 8);
            if let (Some(a), Some(b)) = (k1, k8) {
                assert!(a > b, "{spec:?}");
            }
        }
    }

    #[test]
    fn inter_prune_reduces_expert_count_in_results() {
        let rs = sweep(&olmoe_1b_7b(), true);
        // All rows exist (7 specs x 2 topks in fast mode... baseline + 4).
        assert_eq!(rs.len(), prune_specs(true).len() * 2);
        assert!(rs.iter().all(|r| r.throughput.is_some()));
    }
}
