//! `ext-mem`: expert residency, predictive prefetch, and offload-aware
//! serving under constrained HBM budgets.
//!
//! Four studies driven by `moe-mem`:
//!
//! * **Trace artifact** — a seeded `moe-engine` generation run exports its
//!   routing trace + activation stats as a moe-json-replayable
//!   [`TraceArtifact`]; every derived number below is a pure function of
//!   those bytes.
//! * **Degradation sweep** — HBM budget x predictor quality priced through
//!   the analytic cost model (Mixtral-8x7B, 2x H100, TP2). The full
//!   budget reproduces the all-resident prices bit for bit; shrinking it
//!   bends TTFT/ITL upward, with the knee and the collapse of the
//!   predictor-quality ladder quoted in the headline note.
//! * **Replication** — hot-expert replication across EP ranks measured
//!   against contiguous and LPT packing on the real routing loads.
//! * **The cost cliff** — the planner's single-device fp16 OOM wall
//!   (Figure 5) turns into a feasible-but-slower offloaded deployment
//!   once derived residencies join the search space.

use moe_cluster::{TenantSpec, WorkloadSpec};
use moe_engine::generate::GenerateParams;
use moe_engine::trace::{capture_trace, TraceArtifact};
use moe_gpusim::device::Interconnect;
use moe_gpusim::residency::ExpertResidency;
use moe_gpusim::{Cluster, EngineOptions, ParallelPlan, PerfModel};
use moe_mem::{derive_residency, mean_imbalance, replication_study, PredictorQuality};
use moe_model::registry::{mixtral_8x7b, tiny_test_model};
use moe_plan::{plan, FleetSpec, PlanReport, PlannerSpec, SearchMode, SearchSpace, SloSpec};
use moe_trace::Tracer;

use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, secs, ExperimentReport, Table};

/// Registry handle.
pub struct ExtMem;

impl Experiment for ExtMem {
    fn id(&self) -> &'static str {
        "ext-mem"
    }
    fn title(&self) -> &'static str {
        "Extension: Expert Residency & Offload (HBM budget x predictor quality x replication)"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

/// Seed for the trace-capture generation run and every planner study.
pub const MEM_SEED: u64 = 29;

/// Predictor quality ladder, best first.
const QUALITIES: [PredictorQuality; 3] = [
    PredictorQuality::Oracle,
    PredictorQuality::Frequency,
    PredictorQuality::Uniform,
];

/// HBM budgets swept (fractions of routed-expert bytes), descending.
/// Multiples of 1/8 keep `floor(frac * 8)` exact on the 8-expert models.
fn budgets(fast: bool) -> &'static [f64] {
    if fast {
        &[1.0, 0.5, 0.25]
    } else {
        &[1.0, 0.75, 0.5, 0.375, 0.25, 0.125]
    }
}

/// The seeded engine run every residency in this experiment derives from:
/// a down-scaled 8-expert top-2 model (Mixtral's routing shape) so the
/// transition tables and hot-sets come from real dispatch, not synthetic
/// skew.
pub fn trace_artifact() -> TraceArtifact {
    capture_trace(
        "tiny-8x2",
        tiny_test_model(8, 2),
        MEM_SEED,
        &[1, 2, 3, 4, 5, 6, 7, 8],
        GenerateParams::greedy(24),
    )
}

/// One priced point of the degradation sweep.
pub struct DegradationRow {
    /// Swept HBM budget (fraction of routed-expert bytes).
    pub hbm_frac: f64,
    /// Predictor tier the residency was derived under.
    pub quality: PredictorQuality,
    /// Derived residency (resident fraction + hit probabilities).
    pub residency: ExpertResidency,
    /// Priced time-to-first-token (s).
    pub ttft_s: f64,
    /// Priced inter-token latency (s).
    pub itl_s: f64,
}

/// Price one residency on the serving configuration of the sweep:
/// Mixtral-8x7B, 2x H100 TP2, batch 8, 1k prompt / 1k decode.
fn price(residency: ExpertResidency) -> (f64, f64) {
    let opts = EngineOptions::default()
        .with_plan(ParallelPlan::tensor(2))
        .with_residency(residency);
    let metrics = PerfModel::new(mixtral_8x7b(), Cluster::h100_node(2), opts)
        .expect("TP2 Mixtral on H100 is a valid configuration")
        .run(8, 1024, 1024, &mut Tracer::disabled(), 0)
        .expect("offloaded Mixtral fits two 80 GB devices");
    (metrics.ttft_s, metrics.itl_s)
}

/// The full budget x quality sweep: derive a residency from the trace at
/// each point and price it through the analytic model.
pub fn degradation_rows(fast: bool) -> Vec<DegradationRow> {
    let artifact = trace_artifact();
    let mut rows = Vec::new();
    for &hbm_frac in budgets(fast) {
        for quality in QUALITIES {
            let derived = derive_residency(&artifact, hbm_frac, quality, Interconnect::pcie_gen5());
            let (ttft_s, itl_s) = price(derived.residency);
            rows.push(DegradationRow {
                hbm_frac,
                quality,
                residency: derived.residency,
                ttft_s,
                itl_s,
            });
        }
    }
    rows
}

/// Planner spec for the cost-cliff study: Mixtral-8x7B on a single 80 GB
/// device under a loose latency SLO (feasibility, not SLO filtering, is
/// the subject). Sequences are kept short so the KV cache stays small
/// enough that the wall is weights-driven — exactly Figure 5's regime.
fn cliff_spec(space: SearchSpace) -> PlannerSpec {
    PlannerSpec {
        model: mixtral_8x7b(),
        draft: None,
        fleet: FleetSpec::h100(1),
        workload: WorkloadSpec::poisson(
            3.0,
            80,
            TenantSpec::uniform("chat", 1.0, (128, 512), (32, 128)),
        ),
        slo: SloSpec::latency(2.0, 0.05),
        space,
        mode: SearchMode::Exhaustive,
        refine_top_k: 1,
        seed: MEM_SEED,
    }
}

/// Run the single-device planner twice: on the classic all-resident grid
/// (fp16 dies on the OOM wall) and on the same grid widened with two
/// trace-derived offload residencies (fp16 becomes feasible but slower).
pub fn cliff_reports() -> (PlanReport, PlanReport) {
    let artifact = trace_artifact();
    let offloads: Vec<ExpertResidency> = [0.5, 0.25]
        .iter()
        .map(|&frac| {
            derive_residency(
                &artifact,
                frac,
                PredictorQuality::Frequency,
                Interconnect::pcie_gen5(),
            )
            .residency
        })
        .collect();
    let walled =
        plan(&cliff_spec(SearchSpace::paper())).expect("fp8 keeps the single-device grid feasible");
    let offloaded = plan(&cliff_spec(
        SearchSpace::paper().with_residencies(&offloads),
    ))
    .expect("the offload grid is a superset of a feasible grid");
    (walled, offloaded)
}

fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

fn yes_no(v: bool) -> String {
    if v { "yes" } else { "no" }.to_string()
}

fn artifact_table(artifact: &TraceArtifact) -> Table {
    let mut t = Table::new(
        "seeded routing-trace artifact (moe-json replayable)",
        &[
            "Model",
            "Seed",
            "Layers",
            "Experts",
            "Top-k",
            "Tokens/layer",
            "Assignments",
            "JSON bytes",
        ],
    );
    t.row(vec![
        artifact.model.clone(),
        artifact.seed.to_string(),
        num(artifact.trace.num_layers as f64),
        num(artifact.trace.num_experts as f64),
        num(artifact.trace.top_k as f64),
        num(artifact.trace.tokens(0) as f64),
        num(artifact.trace.total_assignments() as f64),
        num(moe_json::to_string(artifact).len() as f64),
    ]);
    t
}

fn degradation_table(rows: &[DegradationRow], full_itl_s: f64) -> Table {
    let mut t = Table::new(
        "TTFT/ITL under HBM budget x predictor quality (Mixtral-8x7B, 2x H100 TP2, batch 8, 1k/1k)",
        &[
            "HBM budget",
            "Predictor",
            "Resident",
            "Residency hit",
            "Predictor hit",
            "TTFT",
            "ITL",
            "ITL vs full",
        ],
    );
    for r in rows {
        t.row(vec![
            pct(r.hbm_frac),
            r.quality.name().to_string(),
            pct(r.residency.resident_frac),
            num(r.residency.residency_hit),
            num(r.residency.predictor_hit),
            secs(r.ttft_s),
            secs(r.itl_s),
            format!("{:.2}x", r.itl_s / full_itl_s),
        ]);
    }
    t
}

fn replication_table(artifact: &TraceArtifact) -> Table {
    let mut t = Table::new(
        "hot-expert replication across 4 EP ranks (real routing loads, mean over layers)",
        &[
            "Replication factor",
            "Contiguous",
            "LPT",
            "Replicated",
            "Skew recovered",
        ],
    );
    for factor in [1usize, 2, 4] {
        let study = replication_study(&artifact.stats, 4, factor);
        let contiguous = mean_imbalance(&study, |r| r.contiguous);
        let lpt = mean_imbalance(&study, |r| r.lpt);
        let replicated = mean_imbalance(&study, |r| r.replicated);
        let recovered = if lpt > 1.0 + 1e-12 {
            pct((lpt - replicated) / (lpt - 1.0))
        } else {
            "-".to_string()
        };
        t.row(vec![
            num(factor as f64),
            num(contiguous),
            num(lpt),
            num(replicated),
            recovered,
        ]);
    }
    t
}

fn cliff_counts_table(walled: &PlanReport, offloaded: &PlanReport) -> Table {
    let mut t = Table::new(
        "the OOM wall becomes a cost cliff: Mixtral-8x7B on one 80 GB device",
        &[
            "Grid",
            "Enumerated",
            "Scored",
            "OOM",
            "fp16 on frontier",
            "Recommended",
        ],
    );
    for (label, report) in [("all-resident", walled), ("+offload", offloaded)] {
        let fp16 = report
            .frontier
            .iter()
            .any(|c| c.config.precision == moe_tensor::Precision::F16);
        t.row(vec![
            label.to_string(),
            num(report.counts.enumerated as f64),
            num(report.counts.scored as f64),
            num(report.counts.infeasible_oom as f64),
            yes_no(fp16),
            report.recommended.label.clone(),
        ]);
    }
    t
}

fn cliff_frontier_table(offloaded: &PlanReport) -> Table {
    let mut t = Table::new(
        "offload frontier (single device, cost-ascending)",
        &[
            "Config",
            "tok/s",
            "TTFT",
            "ITL",
            "Cost dev-ms/tok",
            "Accuracy",
        ],
    );
    for c in &offloaded.frontier {
        t.row(vec![
            c.label.clone(),
            num(c.predicted_tok_s),
            secs(c.predicted_ttft_s),
            secs(c.predicted_itl_s),
            format!("{:.4}", c.cost_per_token_device_s * 1e3),
            num(c.accuracy),
        ]);
    }
    t
}

/// One `(budget, quality)` point of the sweep.
fn row_at(rows: &[DegradationRow], hbm_frac: f64, quality: PredictorQuality) -> &DegradationRow {
    rows.iter()
        .find(|r| r.hbm_frac == hbm_frac && r.quality == quality)
        .expect("the sweep prices every (budget, quality) point")
}

/// ITL of one `(budget, quality)` point of the sweep.
fn itl_at(rows: &[DegradationRow], hbm_frac: f64, quality: PredictorQuality) -> f64 {
    row_at(rows, hbm_frac, quality).itl_s
}

fn build(fast: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(ExtMem.id(), ExtMem.title());
    let artifact = trace_artifact();
    report.table(artifact_table(&artifact));

    let rows = degradation_rows(fast);
    let full_itl_s = itl_at(&rows, 1.0, PredictorQuality::Oracle);
    report.table(degradation_table(&rows, full_itl_s));
    report.table(replication_table(&artifact));

    let (walled, offloaded) = cliff_reports();
    report.table(cliff_counts_table(&walled, &offloaded));
    report.table(cliff_frontier_table(&offloaded));

    // The budget knee: the largest constrained budget whose trained
    // predictor no longer holds ITL within 25% of the full-budget price.
    let swept = budgets(fast);
    let knee = swept
        .iter()
        .filter(|&&b| b < 1.0)
        .find(|&&b| itl_at(&rows, b, PredictorQuality::Frequency) > 1.25 * full_itl_s)
        .copied();
    // Quality-ladder spread (uniform over oracle) on TTFT — the prefill
    // window is long enough for prediction quality to matter, where the
    // decode stall saturates on miss latency. Where the spread collapses,
    // prefetch quality has stopped saving the budget.
    let spread = |b: f64| {
        row_at(&rows, b, PredictorQuality::Uniform).ttft_s
            / row_at(&rows, b, PredictorQuality::Oracle).ttft_s
    };
    let widest = swept
        .iter()
        .copied()
        .max_by(|&a, &b| spread(a).total_cmp(&spread(b)))
        .unwrap_or(1.0);
    let tightest = swept.last().copied().unwrap_or(1.0);
    let cliff = offloaded
        .frontier
        .iter()
        .find(|c| !c.config.residency.is_all_resident());
    let base = offloaded
        .frontier
        .iter()
        .find(|c| c.config.residency.is_all_resident());
    report.note(format!(
        "Residencies derived from the seed-{MEM_SEED} routing trace and priced as prefetch \
         transfers that overlap the layer's compute window (stall = max(0, load - window)). \
         The full budget reproduces the all-resident prices bit for bit. The budget knee \
         sits at {}: the first swept budget where the trained frequency predictor exceeds \
         1.25x the full-budget ITL. The predictor-quality ladder shows in TTFT (the \
         prefill window is long enough for prediction quality to matter): widest at a {} \
         budget (uniform {:.2}x oracle) and collapsed to {:.2}x at {} — once miss traffic \
         swamps the overlap window, prefetch quality stops saving an over-constrained \
         budget. On \
         one 80 GB device the all-resident grid rejects every fp16 Mixtral candidate as \
         OOM ({} rejections); the offload grid keeps {} on the frontier at {} ITL — \
         feasible, full fp16 accuracy, and {:.1}x the ITL of the cheapest all-resident \
         (fp8) point: the OOM wall priced as a cost cliff.",
        knee.map_or("below the sweep".to_string(), pct),
        pct(widest),
        spread(widest),
        spread(tightest),
        pct(tightest),
        walled.counts.infeasible_oom,
        cliff.map_or("no offloaded point".to_string(), |c| c.label.clone()),
        cliff.map_or("-".to_string(), |c| secs(c.predicted_itl_s)),
        match (cliff, base) {
            (Some(c), Some(b)) if b.predicted_itl_s > 0.0 => c.predicted_itl_s / b.predicted_itl_s,
            _ => f64::NAN,
        },
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_tensor::Precision;

    #[test]
    fn report_renders_with_all_tables() {
        let rendered = build(true).render();
        assert!(rendered.contains("routing-trace artifact"));
        assert!(rendered.contains("TTFT/ITL under HBM budget"));
        assert!(rendered.contains("hot-expert replication"));
        assert!(rendered.contains("cost cliff"));
        assert!(rendered.contains("offload frontier"));
        assert!(rendered.contains("hbm"));
    }

    #[test]
    fn budget_pressure_is_monotone_under_the_oracle() {
        let rows = degradation_rows(true);
        let oracle: Vec<f64> = budgets(true)
            .iter()
            .map(|&b| itl_at(&rows, b, PredictorQuality::Oracle))
            .collect();
        for pair in oracle.windows(2) {
            assert!(
                pair[1] >= pair[0] - 1e-15,
                "shrinking budget must not speed decode: {pair:?}"
            );
        }
    }

    #[test]
    fn quality_ladder_orders_every_constrained_budget() {
        let rows = degradation_rows(true);
        for &b in budgets(true).iter().filter(|&&b| b < 1.0) {
            let oracle = row_at(&rows, b, PredictorQuality::Oracle);
            let freq = row_at(&rows, b, PredictorQuality::Frequency);
            let uniform = row_at(&rows, b, PredictorQuality::Uniform);
            for (metric, o, f, u) in [
                ("itl", oracle.itl_s, freq.itl_s, uniform.itl_s),
                ("ttft", oracle.ttft_s, freq.ttft_s, uniform.ttft_s),
            ] {
                assert!(o <= f + 1e-12, "budget {b} {metric}: {o} vs {f}");
                assert!(f <= u + 1e-12, "budget {b} {metric}: {f} vs {u}");
            }
        }
    }

    #[test]
    fn offload_turns_the_oom_wall_into_a_cost_cliff() {
        let (walled, offloaded) = cliff_reports();
        assert!(
            walled.counts.infeasible_oom > 0,
            "fp16 Mixtral cannot fit one 80 GB device"
        );
        assert!(
            !walled
                .frontier
                .iter()
                .any(|c| c.config.precision == Precision::F16),
            "the all-resident grid must not surface fp16 on one device"
        );
        let cliff = offloaded
            .frontier
            .iter()
            .find(|c| c.config.precision == Precision::F16 && !c.config.residency.is_all_resident())
            .expect("an offloaded fp16 candidate joins the frontier");
        let fp8 = offloaded
            .frontier
            .iter()
            .find(|c| c.config.residency.is_all_resident())
            .expect("the fp8 all-resident points survive");
        assert!(
            cliff.predicted_itl_s > fp8.predicted_itl_s,
            "the cliff must be visible: offloaded fp16 {} vs resident fp8 {}",
            cliff.predicted_itl_s,
            fp8.predicted_itl_s
        );
        assert!(cliff.accuracy > fp8.accuracy, "fp16 keeps full accuracy");
    }

    #[test]
    fn replication_never_loses_to_lpt_in_the_report() {
        let artifact = trace_artifact();
        for factor in [1usize, 2, 4] {
            let study = replication_study(&artifact.stats, 4, factor);
            assert!(!study.is_empty());
            let lpt = mean_imbalance(&study, |r| r.lpt);
            let replicated = mean_imbalance(&study, |r| r.replicated);
            assert!(
                replicated <= lpt + 1e-9,
                "factor {factor}: {replicated} vs {lpt}"
            );
        }
    }
}
