//! Ablation studies on the design choices `DESIGN.md` calls out — what
//! each modeling/serving mechanism contributes, and where the paper's
//! numbers are sensitive to stack assumptions.
//!
//! * [`overhead`] — host-overhead sensitivity of the Fig. 5 TopK result
//!   (documents why our small-batch sensitivity deviates from vLLM's).
//! * [`mla`] — what MLA KV compression would change for DeepSeek-V2-Lite
//!   (the paper's vLLM materialized full KV; real MLA shrinks it ~15x).
//! * [`kv_precision`] — FP8 KV cache on a KV-heavy model (Qwen1.5-MoE).
//! * [`spec_surface`] — acceptance-rate x draft-length surface for
//!   speculative decoding, with the optimal gamma per acceptance level.
//! * [`prefix_caching`] — measured prefill-compute savings of the live
//!   server's prefix cache on repeated prompts (real execution).

use moe_engine::model::MoeTransformer;
use moe_gpusim::device::Cluster;
use moe_gpusim::parallel::ParallelPlan;
use moe_gpusim::perfmodel::{EngineOptions, PerfModel};
use moe_gpusim::spec::{expected_tokens_per_cycle, spec_run, SpecParams};
use moe_model::registry::{deepseek_v2_lite, qwen15_moe_a27b, qwen3_1_7b, qwen3_30b_a3b};
use moe_runtime::liveserver::LiveServer;
use moe_runtime::prefixcache::PrefixCache;
use moe_runtime::scheduler::SchedulerConfig;
use moe_tensor::Precision;

use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, ExperimentReport, Table};

/// Host-overhead ablation: the TopK 1->32 relative throughput drop of
/// DeepSeek-V2-Lite at batch 1 and 64, under different per-step host
/// overheads. Returns `(overhead_ms, drop_b1, drop_b64)` rows.
pub fn overhead() -> Vec<(f64, f64, f64)> {
    let mut rows = Vec::new();
    for overhead_ms in [0.0f64, 2.0, 4.0, 8.0, 16.0] {
        let opts = EngineOptions::default()
            .with_plan(ParallelPlan::tensor(2))
            .with_framework_overhead(overhead_ms / 1e3);
        let drop_at = |batch: usize| {
            let t = |k: usize| {
                PerfModel::new(
                    deepseek_v2_lite().with_top_k(k),
                    Cluster::h100_node(2),
                    opts.clone(),
                )
                .expect("valid plan")
                .run(batch, 1024, 1024, &mut moe_trace::Tracer::disabled(), 0)
                .expect("fits TP2")
                .throughput_tok_s
            };
            1.0 - t(32) / t(1)
        };
        rows.push((overhead_ms, drop_at(1), drop_at(64)));
    }
    rows
}

/// MLA ablation: DeepSeek-V2-Lite served with materialized full KV (what
/// the paper's vLLM did) vs the compressed 576-dim MLA latent. Returns
/// `(label, kv_gb_batch64_ctx4k, tok/s_batch64)`.
pub fn mla() -> Vec<(String, f64, f64)> {
    let mut rows = Vec::new();
    for (label, latent) in [
        ("full KV (paper's stack)", None),
        ("MLA latent 576", Some(576)),
    ] {
        let mut cfg = deepseek_v2_lite();
        cfg.kv_latent_dim = latent;
        let kv_gb = cfg.kv_bytes_per_token(2.0) * 64.0 * 4096.0 / 1e9;
        let model = PerfModel::new(
            cfg,
            Cluster::h100_node(2),
            EngineOptions::default().with_plan(ParallelPlan::tensor(2)),
        )
        .expect("valid plan");
        let tput = model
            .run(64, 1024, 1024, &mut moe_trace::Tracer::disabled(), 0)
            .expect("fits TP2")
            .throughput_tok_s;
        rows.push((label.to_string(), kv_gb, tput));
    }
    rows
}

/// KV-precision ablation on the KV-heavy Qwen1.5-MoE: fp16 vs fp8 cache.
/// Returns `(label, kv_gb, tok/s)` at batch 64, ctx 4096.
pub fn kv_precision() -> Vec<(String, f64, f64)> {
    let mut rows = Vec::new();
    for (label, p) in [("fp16 KV", Precision::F16), ("fp8 KV", Precision::Fp8E4M3)] {
        let cfg = qwen15_moe_a27b();
        let kv_gb = cfg.kv_bytes_per_token(p.bytes_per_param()) * 64.0 * 4096.0 / 1e9;
        let model = PerfModel::new(
            cfg,
            Cluster::h100_node(2),
            EngineOptions::default()
                .with_plan(ParallelPlan::tensor(2))
                .with_kv_precision(p),
        )
        .expect("valid plan");
        let tput = model
            .run(64, 1024, 1024, &mut moe_trace::Tracer::disabled(), 0)
            .expect("fits TP2")
            .throughput_tok_s;
        rows.push((label.to_string(), kv_gb, tput));
    }
    rows
}

/// Speculation surface: throughput for acceptance levels x gamma, plus
/// the analytic tokens/cycle. Returns `(alpha, gamma, tokens_per_cycle,
/// tok/s)`.
pub fn spec_surface(fast: bool) -> Vec<(f64, usize, f64, f64)> {
    let gammas: &[usize] = if fast { &[1, 3, 7] } else { &[1, 2, 3, 5, 7] };
    let place = |cfg| {
        PerfModel::new(
            cfg,
            Cluster::h100_node(2),
            EngineOptions::default().with_plan(ParallelPlan::tensor(2)),
        )
        .expect("TP2 valid")
    };
    let target = place(qwen3_30b_a3b());
    let draft = place(qwen3_1_7b());
    let mut rows = Vec::new();
    for alpha in [0.5f64, 0.7, 0.9] {
        for &gamma in gammas {
            let r = spec_run(&target, &draft, SpecParams { gamma, alpha }, 16, 1024, 256)
                .expect("fits");
            rows.push((
                alpha,
                gamma,
                expected_tokens_per_cycle(alpha, gamma),
                r.throughput_tok_s,
            ));
        }
    }
    rows
}

/// Prefix-caching ablation on the live executor: serve the same long
/// prompt `requests` times with and without the cache; returns
/// `(tokens_without, tokens_with, saved)` forward-pass token counts.
pub fn prefix_caching(requests: usize) -> (u64, u64, u64) {
    let prompt: Vec<usize> = (1..64).collect();
    let serve = |cache: Option<PrefixCache>| {
        let model = MoeTransformer::new(moe_model::registry::tiny_test_model(8, 2), 42);
        let mut server = LiveServer::new(model, SchedulerConfig::default());
        if let Some(c) = cache {
            server = server.with_prefix_cache(c);
        }
        for _ in 0..requests {
            server.submit(prompt.clone(), 4);
        }
        let mut steps = 0;
        while server.step() {
            steps += 1;
            assert!(steps < 100_000, "livelock");
        }
        server.tokens_processed()
    };
    let without = serve(None);
    let with = serve(Some(PrefixCache::new(16, 100_000)));
    (without, with, without - with)
}

/// Build the combined ablation report.
/// Registry handle.
pub struct Ablations;

impl Experiment for Ablations {
    fn id(&self) -> &'static str {
        "ablations"
    }
    fn title(&self) -> &'static str {
        "Ablations: host overhead, MLA KV, KV precision, speculation surface, prefix caching"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

fn build(fast: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(Ablations.id(), Ablations.title());

    let mut t = Table::new(
        "host-overhead sensitivity of the Fig.5 TopK drop (DeepSeek-V2-Lite)",
        &["Overhead ms/step", "Drop @ batch 1", "Drop @ batch 64"],
    );
    for (ms, d1, d64) in overhead() {
        t.row(vec![
            num(ms),
            format!("{:.1}%", d1 * 100.0),
            format!("{:.1}%", d64 * 100.0),
        ]);
    }
    report.table(t);
    report.note(
        "Higher host overhead suppresses the small-batch TopK penalty — the mechanism \
         behind the Fig.5 small-batch deviation recorded in EXPERIMENTS.md.",
    );

    let mut t = Table::new(
        "MLA KV compression (DeepSeek-V2-Lite, batch 64, ctx 4096, TP2)",
        &["KV layout", "KV size (GB)", "tok/s"],
    );
    for (label, gb, tput) in mla() {
        t.row(vec![label, num(gb), num(tput)]);
    }
    report.table(t);

    let mut t = Table::new(
        "KV precision (Qwen1.5-MoE, batch 64, ctx 4096, TP2)",
        &["KV precision", "KV size (GB)", "tok/s"],
    );
    for (label, gb, tput) in kv_precision() {
        t.row(vec![label, num(gb), num(tput)]);
    }
    report.table(t);

    let mut t = Table::new(
        "speculation surface (Qwen3-30B target, Qwen3-1.7B-class draft)",
        &["alpha", "gamma", "tokens/cycle", "tok/s"],
    );
    for (alpha, gamma, tpc, tput) in spec_surface(fast) {
        t.row(vec![num(alpha), gamma.to_string(), num(tpc), num(tput)]);
    }
    report.table(t);

    let (without, with, saved) = prefix_caching(4);
    let mut t = Table::new(
        "prefix caching on the live executor (4 identical 63-token prompts)",
        &["Configuration", "Forward tokens", "Saved"],
    );
    t.row(vec!["no cache".into(), without.to_string(), "-".into()]);
    t.row(vec![
        "prefix cache".into(),
        with.to_string(),
        saved.to_string(),
    ]);
    report.table(t);
    report.note(
        "Prefix caching is measured on real forward passes; outputs are bit-identical \
         with and without the cache (pinned by unit tests).",
    );

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_suppresses_small_batch_sensitivity() {
        let rows = overhead();
        let first = rows.first().expect("rows");
        let last = rows.last().expect("rows");
        // Batch-1 drop shrinks sharply as overhead grows (53% -> 11%).
        assert!(last.1 < first.1 * 0.4, "0ms {} vs 16ms {}", first.1, last.1);
        // The batch-1 vs batch-64 sensitivity gap closes: from >2x apart
        // at 0 ms to near-parity at vLLM-like overheads.
        assert!(first.1 / first.2 > 1.8);
        assert!(
            last.1 / last.2 < 1.15,
            "b1 {} vs b64 {} at 16ms",
            last.1,
            last.2
        );
    }

    #[test]
    fn mla_shrinks_kv_and_raises_throughput() {
        let rows = mla();
        let (full, mla) = (&rows[0], &rows[1]);
        assert!(mla.1 < full.1 / 5.0, "KV {} vs {}", mla.1, full.1);
        assert!(mla.2 > full.2, "tok/s {} vs {}", mla.2, full.2);
    }

    #[test]
    fn fp8_kv_halves_cache_and_helps() {
        let rows = kv_precision();
        let (f16, f8) = (&rows[0], &rows[1]);
        assert!((f8.1 - f16.1 / 2.0).abs() / f16.1 < 0.01);
        assert!(f8.2 > f16.2);
    }

    #[test]
    fn higher_acceptance_rewards_longer_drafts() {
        let rows = spec_surface(true);
        let best_gamma = |alpha: f64| {
            rows.iter()
                .filter(|r| r.0 == alpha)
                .max_by(|a, b| a.3.partial_cmp(&b.3).expect("finite"))
                .expect("rows")
                .1
        };
        assert!(best_gamma(0.9) >= best_gamma(0.5));
    }

    #[test]
    fn prefix_cache_saves_prompt_blocks() {
        let (without, with, saved) = prefix_caching(3);
        assert!(with < without);
        // Two later requests each reuse 48 cached tokens (three 16-token
        // blocks of the 63-token prompt).
        assert_eq!(saved, 2 * 48);
    }
}
