//! `ext-cluster`: multi-replica serving experiments on `moe-cluster`.
//!
//! Two studies, both on the canonical prefix-heavy mix
//! ([`WorkloadSpec::prefix_heavy`]) over 4 OLMoE-1B-7B/H100 replicas:
//!
//! * **QPS sweep per routing policy** — offered load vs p50/p99 TTFT and
//!   TTFT-SLO attainment for round-robin, least-outstanding,
//!   power-of-two-choices and prefix-affinity. Near saturation the
//!   ordering `prefix-affinity ≤ power-of-two ≤ least-outstanding ≤
//!   round-robin` emerges on tail TTFT: cache affinity cuts effective
//!   prefill work, and queue-aware placement dodges the cold heavy
//!   tenant.
//! * **Fault sweep** — the same workload under replica faults: a crash
//!   with retries disabled (losses drop), the same crash with bounded
//!   retry + backoff (losses recover, tail grows but stays bounded), and
//!   a 4x straggler window.

use moe_cluster::{
    generate, ClusterConfig, ClusterReport, ClusterSim, FaultPlan, RoutePolicy, RouterConfig,
    WorkloadSpec,
};
use moe_gpusim::perfmodel::PerfModel;
use moe_model::registry::olmoe_1b_7b;
use moe_trace::{Category, Tracer, BENCH_TRACK};

use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, secs, ExperimentReport, Table};

/// Registry handle.
pub struct ExtCluster;

impl Experiment for ExtCluster {
    fn id(&self) -> &'static str {
        "ext-cluster"
    }
    fn title(&self) -> &'static str {
        "Extension: Multi-Replica Serving (4x OLMoE-1B-7B/H100, prefix-heavy mix)"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast, ctx.tracer)
    }
}

/// TTFT service-level objective used for attainment curves.
pub const TTFT_SLO_S: f64 = 0.05;

/// Workload seed shared by every `ext-cluster` point (the policy
/// comparison must hold the trace fixed across policies).
const WORKLOAD_SEED: u64 = 31;

fn cluster_config(policy: RoutePolicy) -> ClusterConfig {
    ClusterConfig {
        replicas: 4,
        policy,
        router: RouterConfig::default(),
        prefix_capacity: 16,
        seed: 1,
        ..ClusterConfig::default()
    }
}

fn run_point(
    model: &PerfModel,
    policy: RoutePolicy,
    qps: f64,
    requests: usize,
    faults: FaultPlan,
    retries: u32,
    tracer: &mut Tracer,
) -> ClusterReport {
    let trace = generate(&WorkloadSpec::prefix_heavy(qps, requests), WORKLOAD_SEED);
    let mut cfg = cluster_config(policy);
    cfg.router.max_retries = retries;
    let sim = ClusterSim::sized_for(model, 8192, cfg, faults, trace);
    let report = sim.run(tracer);
    if tracer.is_enabled() {
        tracer.span_with(
            BENCH_TRACK,
            Category::Bench,
            &format!("{} qps {qps}", policy.label()),
            0.0,
            report.makespan_s,
            vec![("qps", qps.into()), ("requests", requests.into())],
        );
        tracer.advance(report.makespan_s);
    }
    report
}

/// One QPS-sweep row: `(policy, qps, report)`.
pub fn sweep_rows(fast: bool) -> Vec<(RoutePolicy, f64, ClusterReport)> {
    sweep_rows_traced(fast, &mut Tracer::disabled())
}

/// [`sweep_rows`] with tracing: every `(policy, qps)` point runs through
/// `ClusterSim::run` (router decisions, per-replica step spans,
/// queue counters), gets a grouping span on [`BENCH_TRACK`], and advances
/// the tracer base by the point's makespan so points tile one monotone
/// timeline. With a disabled tracer this is exactly [`sweep_rows`].
pub fn sweep_rows_traced(
    fast: bool,
    tracer: &mut Tracer,
) -> Vec<(RoutePolicy, f64, ClusterReport)> {
    let rates: &[f64] = if fast {
        &[60.0, 100.0]
    } else {
        &[40.0, 60.0, 80.0, 100.0]
    };
    let requests: usize = if fast { 150 } else { 400 };
    let model = PerfModel::h100(olmoe_1b_7b());
    let mut rows = Vec::new();
    for &qps in rates {
        for policy in RoutePolicy::all() {
            let report = run_point(
                &model,
                policy,
                qps,
                requests,
                FaultPlan::none(),
                RouterConfig::default().max_retries,
                tracer,
            );
            rows.push((policy, qps, report));
        }
    }
    rows
}

/// One fault-sweep row: `(scenario label, report)`.
pub fn fault_rows(fast: bool) -> Vec<(&'static str, ClusterReport)> {
    fault_rows_traced(fast, &mut Tracer::disabled())
}

/// [`fault_rows`] with tracing (same contract as [`sweep_rows_traced`]).
///
/// All scenarios route with least-outstanding at a moderate load; the
/// crash takes one of four replicas down for two seconds mid-run.
pub fn fault_rows_traced(fast: bool, tracer: &mut Tracer) -> Vec<(&'static str, ClusterReport)> {
    let requests: usize = if fast { 150 } else { 400 };
    // Near saturation: replicas hold real queue depth, so a crash loses
    // a visible slice of in-flight work rather than one straggler.
    let qps = 100.0;
    let model = PerfModel::h100(olmoe_1b_7b());
    let policy = RoutePolicy::LeastOutstanding;
    // The fast trace is shorter; keep the fault inside its busy window.
    let crash_at = if fast { 0.7 } else { 1.5 };
    let crash = || FaultPlan::crash_window(0, crash_at, 2.0);
    let scenarios: Vec<(&'static str, FaultPlan, u32)> = vec![
        ("healthy", FaultPlan::none(), 3),
        ("crash, no retry", crash(), 0),
        ("crash, retries=3", crash(), 3),
        (
            "4x slowdown window",
            FaultPlan::slowdown_window(0, crash_at, 2.0, 4.0),
            3,
        ),
    ];
    scenarios
        .into_iter()
        .map(|(label, faults, retries)| {
            (
                label,
                run_point(&model, policy, qps, requests, faults, retries, tracer),
            )
        })
        .collect()
}

/// Build the cluster report while recording every point into `tracer`.
fn build(fast: bool, tracer: &mut Tracer) -> ExperimentReport {
    let mut report = ExperimentReport::new(ExtCluster.id(), ExtCluster.title());

    let mut sweep = Table::new(
        format!(
            "routing policy vs offered load (TTFT SLO = {} ms)",
            (TTFT_SLO_S * 1e3) as i64
        ),
        &[
            "Policy",
            "Offered QPS",
            "p50 TTFT",
            "p99 TTFT",
            "SLO attain",
            "Prefix hits",
            "Cost dev-ms/tok",
        ],
    );
    for (policy, qps, r) in sweep_rows_traced(fast, tracer) {
        sweep.row(vec![
            policy.label().to_string(),
            num(qps),
            secs(r.ttft.p50_s),
            secs(r.ttft.p99_s),
            num(r.slo_attainment(TTFT_SLO_S)),
            num(r.prefix_hit_rate()),
            format!("{:.3}", r.cost_per_token_device_s * 1e3),
        ]);
    }
    report.table(sweep);

    let mut faults = Table::new(
        "fault sweep (least-outstanding, 100 QPS, crash/slowdown on 1 of 4 replicas)",
        &[
            "Scenario",
            "Completed",
            "Dropped",
            "Retries",
            "p99 TTFT",
            "p99 E2E",
        ],
    );
    for (label, r) in fault_rows_traced(fast, tracer) {
        faults.row(vec![
            label.to_string(),
            format!("{}/{}", r.completed, r.submitted),
            num(r.dropped as f64),
            num(r.retries as f64),
            secs(r.ttft.p99_s),
            secs(r.e2e.p99_s),
        ]);
    }
    report.table(faults);

    report.note(
        "Near saturation, tail TTFT orders prefix-affinity <= power-of-two <= \
         least-outstanding <= round-robin: long shared prefixes make cache-affine \
         placement cheaper per request, and queue-aware policies dodge the cold heavy \
         tenant that blind round-robin stacks. Under a replica crash, bounded retry \
         with backoff recovers every lost request (completed stays full) at a bounded \
         tail cost, where disabling retries silently drops them.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_sweep_retries_bound_tail_instead_of_dropping() {
        let rows = fault_rows(true);
        let get = |label: &str| {
            rows.iter()
                .find(|(l, _)| *l == label)
                .map(|(_, r)| r)
                .expect("scenario present")
        };
        let healthy = get("healthy");
        let no_retry = get("crash, no retry");
        let retried = get("crash, retries=3");

        assert_eq!(healthy.completed, healthy.submitted);
        assert!(no_retry.dropped > 0, "crash without retries loses requests");
        assert_eq!(
            retried.completed, retried.submitted,
            "retries must recover every crash loss"
        );
        assert!(retried.retries > 0);
        // The tail pays for the outage, but stays bounded: within the
        // outage duration (2 s) of the healthy tail rather than runaway.
        assert!(retried.e2e.p99_s < healthy.e2e.p99_s + 2.0);
    }

    #[test]
    fn sweep_covers_every_policy_at_every_rate() {
        let rows = sweep_rows(true);
        assert_eq!(rows.len(), 2 * RoutePolicy::all().len());
        for (_, _, r) in &rows {
            assert_eq!(r.completed, r.submitted, "healthy sweep completes all");
        }
        // Prefix-affinity keeps its cache edge at every offered load.
        for qps in [60.0, 100.0] {
            let hit = |p: RoutePolicy| {
                rows.iter()
                    .find(|(pp, q, _)| *pp == p && *q == qps)
                    .map(|(_, _, r)| r.prefix_hit_rate())
                    .expect("point present")
            };
            assert!(hit(RoutePolicy::PrefixAffinity) > hit(RoutePolicy::RoundRobin));
        }
    }

    #[test]
    fn report_renders_with_both_tables() {
        let rendered = build(true, &mut Tracer::disabled()).render();
        assert!(rendered.contains("routing policy vs offered load"));
        assert!(rendered.contains("fault sweep"));
        assert!(rendered.contains("prefix-affinity"));
        assert!(rendered.contains("crash, retries=3"));
    }
}
