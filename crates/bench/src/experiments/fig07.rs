//! Figure 7: throughput vs FFN dimension (one panel per expert count),
//! Mixtral-8x7B skeleton, batch 16, in/out 2048, 4 H100s.

use moe_model::variants::{ACTIVE_COUNTS, EXPERT_COUNTS, FFN_DIMS};

use super::sweep59::{at, run_grid, GridResult};
use crate::experiment::{ExpCtx, Experiment};
use crate::report::{tput_cell, ExperimentReport, Table};

/// Build the report (panels: expert count; rows: FFN dim; columns: TopK).
/// Registry handle.
pub struct Fig07;

impl Experiment for Fig07 {
    fn id(&self) -> &'static str {
        "fig7"
    }
    fn title(&self) -> &'static str {
        "Figure 7: Throughput vs FFN Dimension (batch 16, in/out 2048, 4xH100)"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

fn build(fast: bool) -> ExperimentReport {
    let grid = run_grid(fast);
    let mut report = ExperimentReport::new(Fig07.id(), Fig07.title());
    for &e in &EXPERT_COUNTS {
        if !grid.iter().any(|g| g.num_experts == e) {
            continue;
        }
        report.table(panel(&grid, e));
    }
    report.note(
        "Throughput declines steeply as the FFN dimension grows (paper: ~50% average from \
         1792 to 14336), with the largest drops at high active-expert counts; blank (OOM) \
         cells reproduce the figure's missing points.",
    );
    report
}

fn panel(grid: &[GridResult], e: usize) -> Table {
    let mut cols = vec!["FFN dim".to_string()];
    cols.extend(ACTIVE_COUNTS.iter().map(|k| format!("TopK={k}")));
    let mut t = Table::new(
        format!("{e} experts — throughput (tok/s)"),
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for &ffn in &FFN_DIMS {
        if !grid.iter().any(|g| g.ffn_dim == ffn && g.num_experts == e) {
            continue;
        }
        let mut row = vec![ffn.to_string()];
        for &k in &ACTIVE_COUNTS {
            if grid.iter().any(|g| g.top_k == k) {
                row.push(tput_cell(at(grid, ffn, e, k)));
            } else {
                row.push("-".into());
            }
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_expert_panels() {
        let r = build(true);
        assert_eq!(r.tables.len(), 2); // fast grid: 8 and 64 experts
        assert!(r.tables[0].name.contains("8 experts"));
    }

    #[test]
    fn oom_cells_rendered() {
        let r = build(true);
        let all: String = r.tables.iter().map(|t| t.render()).collect();
        assert!(all.contains("OOM"), "expected OOM gaps:\n{all}");
    }
}
