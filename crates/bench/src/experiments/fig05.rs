//! Figure 5: impact of batch size at varying active-expert counts (TopK)
//! for DeepSeek-V2-Lite and Qwen1.5-MoE-A2.7B, context length 2048.

use moe_model::registry::{deepseek_v2_lite, qwen15_moe_a27b};
use moe_model::ModelConfig;
use moe_tensor::Precision;
use moe_trace::{Category, Tracer, BENCH_TRACK, ENGINE_TRACK};

use crate::common::{auto_place, SWEEP_BATCHES};
use crate::experiment::{ExpCtx, Experiment};
use crate::report::{tput_cell, ExperimentReport, Table};

/// Registry handle.
pub struct Fig05;

impl Experiment for Fig05 {
    fn id(&self) -> &'static str {
        "fig5"
    }
    fn title(&self) -> &'static str {
        "Figure 5: Batch Size vs Active Experts (TopK), context 2048"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast, ctx.tracer)
    }
}

/// TopK values swept (the paper scales active experts from 1 to 32).
pub const TOPKS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Context 2048 = 1024 in + 1024 out.
pub const IN_LEN: usize = 1024;
pub const OUT_LEN: usize = 1024;

/// Throughput grid: `(batch, topk) -> Option<tok/s>` for one model. The
/// placement is fixed per model at the largest batch so the whole grid is
/// comparable.
pub fn sweep(base: &ModelConfig, fast: bool) -> Vec<(usize, usize, Option<f64>)> {
    sweep_traced(base, fast, &mut Tracer::disabled())
}

/// [`sweep`] with tracing: every sweep point runs through the unified
/// `PerfModel::run`, gets a grouping span on [`BENCH_TRACK`] labelled
/// with the grid coordinates, and advances the tracer base by the
/// point's end-to-end latency so consecutive points tile one monotone
/// simulated timeline. With a disabled tracer the grid is scored
/// concurrently on the work-stealing pool (the cost model is pure
/// arithmetic, so points are independent); `map_collect` returns points
/// in grid order, making both paths produce identical vectors.
pub fn sweep_traced(
    base: &ModelConfig,
    fast: bool,
    tracer: &mut Tracer,
) -> Vec<(usize, usize, Option<f64>)> {
    let (input, output) = (IN_LEN, OUT_LEN);
    let batches: &[usize] = if fast { &[1, 64] } else { &SWEEP_BATCHES };
    let topks: &[usize] = if fast { &[1, 8, 32] } else { &TOPKS };
    let points: Vec<(usize, usize)> = batches
        .iter()
        .flat_map(|&b| topks.iter().map(move |&k| (b, k)))
        .collect();
    let score_point = |batch: usize, k: usize, tracer: &mut Tracer| {
        let cfg = base.with_top_k(k);
        let placed = auto_place(
            base,
            Precision::F16,
            *SWEEP_BATCHES.last().expect("non-empty"),
            input + output,
        )
        .expect("sweep models fit");
        let model = moe_gpusim::perfmodel::PerfModel::new(
            cfg,
            placed.cluster().clone(),
            placed.options().clone(),
        )
        .expect("same placement");
        model.run(batch, input, output, tracer, ENGINE_TRACK).ok()
    };
    if !tracer.is_enabled() {
        return moe_par::map_collect(points.len(), |i| {
            let (batch, k) = points[i];
            let run = score_point(batch, k, &mut Tracer::disabled());
            (batch, k, run.map(|r| r.throughput_tok_s))
        });
    }
    let mut out = Vec::new();
    for &(batch, k) in &points {
        let run = score_point(batch, k, tracer);
        match &run {
            Some(r) => {
                tracer.span_with(
                    BENCH_TRACK,
                    Category::Bench,
                    &format!("{} b={batch} k={k}", base.name),
                    0.0,
                    r.e2e_s,
                    vec![("batch", batch.into()), ("top_k", k.into())],
                );
                tracer.advance(r.e2e_s);
            }
            None => tracer.instant(
                BENCH_TRACK,
                Category::Bench,
                &format!("{} b={batch} k={k} OOM", base.name),
                0.0,
                vec![("batch", batch.into()), ("top_k", k.into())],
            ),
        }
        out.push((batch, k, run.map(|r| r.throughput_tok_s)));
    }
    out
}

fn grid_table(name: &str, grid: &[(usize, usize, Option<f64>)]) -> Table {
    let mut topks: Vec<usize> = grid.iter().map(|g| g.1).collect();
    topks.sort_unstable();
    topks.dedup();
    let mut batches: Vec<usize> = grid.iter().map(|g| g.0).collect();
    batches.sort_unstable();
    batches.dedup();

    let mut cols = vec!["Batch".to_string()];
    cols.extend(topks.iter().map(|k| format!("TopK={k}")));
    let mut t = Table::new(
        format!("{name} — throughput (tok/s) vs batch x TopK"),
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for &b in &batches {
        let mut row = vec![b.to_string()];
        for &k in &topks {
            let v = grid.iter().find(|g| g.0 == b && g.1 == k).and_then(|g| g.2);
            row.push(tput_cell(v));
        }
        t.row(row);
    }
    t
}

/// Build the report while recording the full sweep into `tracer` (engine
/// step spans on track 0, per-point grouping spans on the bench track).
fn build(fast: bool, tracer: &mut Tracer) -> ExperimentReport {
    let mut report = ExperimentReport::new(Fig05.id(), Fig05.title());
    tracer.name_track(ENGINE_TRACK, "engine");
    tracer.name_track(BENCH_TRACK, "bench");
    for base in [deepseek_v2_lite(), qwen15_moe_a27b()] {
        let grid = sweep_traced(&base, fast, tracer);
        report.table(grid_table(&base.name, &grid));
    }
    report.note(
        "Throughput decreases as TopK grows at every batch size; the relative drop is \
         larger at large batches (paper: 15-20% at batch 64/128 vs 5-8% at batch 1/16 for \
         DeepSeek-V2-Lite when scaling TopK 1 -> 32).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_trace::{timeline_coverage, MemorySink};

    #[test]
    fn traced_sweep_matches_plain_and_tiles_timeline() {
        let base = deepseek_v2_lite();
        let plain = sweep(&base, true);
        let mut tracer = Tracer::new(Box::new(MemorySink::new()));
        let traced = sweep_traced(&base, true, &mut tracer);
        assert_eq!(plain, traced, "tracing must not perturb results");
        let events = tracer.snapshot();
        assert!(!events.is_empty());
        assert!(timeline_coverage(&events, ENGINE_TRACK) > 0.999);
        assert!(timeline_coverage(&events, BENCH_TRACK) > 0.999);
    }

    #[test]
    fn throughput_decreases_with_topk() {
        for base in [deepseek_v2_lite(), qwen15_moe_a27b()] {
            let grid = sweep(&base, true);
            for &batch in &[1usize, 64] {
                let series: Vec<f64> = grid
                    .iter()
                    .filter(|g| g.0 == batch)
                    .filter_map(|g| g.2)
                    .collect();
                assert!(series.len() >= 3, "{}", base.name);
                for w in series.windows(2) {
                    assert!(w[1] < w[0], "{} batch {batch}: {series:?}", base.name);
                }
            }
        }
    }

    #[test]
    fn throughput_increases_with_batch() {
        let grid = sweep(&deepseek_v2_lite(), true);
        let at = |b: usize, k: usize| {
            grid.iter()
                .find(|g| g.0 == b && g.1 == k)
                .unwrap()
                .2
                .unwrap()
        };
        assert!(at(64, 1) > at(1, 1));
        assert!(at(64, 32) > at(1, 32));
    }

    #[test]
    fn large_batches_lose_more_absolute_throughput_to_topk() {
        // The paper's insight is that large batches are more sensitive to
        // active-expert scaling. In absolute tokens/s our model agrees
        // strongly; the *relative* drop ordering deviates (see
        // EXPERIMENTS.md: vLLM's batch-1 decode is host-overhead-bound,
        // ours is weight-traffic-bound).
        for base in [deepseek_v2_lite(), qwen15_moe_a27b()] {
            let grid = sweep(&base, true);
            let at = |b: usize, k: usize| {
                grid.iter()
                    .find(|g| g.0 == b && g.1 == k)
                    .unwrap()
                    .2
                    .unwrap()
            };
            let loss_small = at(1, 1) - at(1, 32);
            let loss_large = at(64, 1) - at(64, 32);
            assert!(
                loss_large > 5.0 * loss_small,
                "{}: small {loss_small:.1} large {loss_large:.1}",
                base.name
            );
            // And the relative drop at large batch is in the paper's
            // double-digit ballpark.
            let drop_large = 1.0 - at(64, 32) / at(64, 1);
            assert!(
                (0.10..0.60).contains(&drop_large),
                "{}: {drop_large}",
                base.name
            );
        }
    }
}
