//! One module per paper table/figure. Each exposes a unit struct
//! implementing [`crate::experiment::Experiment`] (registered in
//! [`crate::experiment::REGISTRY`]) plus the public sweep/measure
//! helpers the paper-claims tests consume. The `fast` flag in
//! [`crate::experiment::ExpCtx`] shrinks grids for tests and smoke runs
//! without changing the mechanisms exercised.

pub mod ablations;
pub mod cap;
pub mod cluster;
pub mod ctrl;
pub mod extensions;
pub mod fig01;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod mem;
pub mod plan;
pub mod scale;
pub mod sweep59;
pub mod table1;
