//! Figure 3: TTFT, ITL and end-to-end latency of the six LLMs at batch 64
//! and input/output length 2048.

use moe_gpusim::perfmodel::RunMetrics;
use moe_model::registry;
use moe_runtime::metrics::LatencySummary;
use moe_runtime::simserver::serve_static_batch;
use moe_tensor::Precision;

use crate::common::auto_place;
use crate::experiment::{ExpCtx, Experiment};
use crate::report::{secs, ExperimentReport, Table};

/// Registry handle.
pub struct Fig03;

impl Experiment for Fig03 {
    fn id(&self) -> &'static str {
        "fig3"
    }
    fn title(&self) -> &'static str {
        "Figure 3: TTFT, ITL and E2E Latency of LLMs (batch 64, in/out 2048)"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

/// Workload from the figure caption.
pub const BATCH: usize = 64;
pub const IN_LEN: usize = 2048;
pub const OUT_LEN: usize = 2048;

/// Per-model latency results.
pub fn measure(fast: bool) -> Vec<(String, usize, RunMetrics)> {
    let _ = fast; // analytic model: full lengths are free
    let (input, output) = (IN_LEN, OUT_LEN);
    registry::llms()
        .into_iter()
        .map(|m| {
            let placed = auto_place(&m, Precision::F16, BATCH, input + output)
                .expect("all Fig.3 LLMs fit on <=8 H100s");
            let gpus = placed.cluster().num_devices;
            let run = placed
                .run(BATCH, input, output, &mut moe_trace::Tracer::disabled(), 0)
                .expect("placement fits");
            (m.name, gpus, run)
        })
        .collect()
}

/// The same workload through the continuous-batching serving path,
/// summarized as per-request latency distributions. The static-batch
/// [`measure`] quotes one number per model; here chunked prefill admits
/// the 64 sequences in waves, so TTFT spreads across the batch and the
/// tail (p99) separates from the median. Returns
/// `(model, ttft summary, e2e summary)` rows.
pub fn served_tails(fast: bool) -> Vec<(String, LatencySummary, LatencySummary)> {
    let _ = fast; // analytic model: full lengths are free
    registry::llms()
        .into_iter()
        .map(|m| {
            let placed = auto_place(&m, Precision::F16, BATCH, IN_LEN + OUT_LEN)
                .expect("all Fig.3 LLMs fit on <=8 H100s");
            let report = serve_static_batch(
                placed,
                BATCH,
                IN_LEN,
                OUT_LEN,
                &mut moe_trace::Tracer::disabled(),
            );
            (m.name, report.ttft, report.e2e)
        })
        .collect()
}

/// Build the report.
fn build(fast: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(Fig03.id(), Fig03.title());
    let mut t = Table::new(
        "latency",
        &["Model", "GPUs", "TTFT", "ITL", "E2E", "Throughput tok/s"],
    );
    let results = measure(fast);
    for (name, gpus, r) in &results {
        t.row(vec![
            name.clone(),
            gpus.to_string(),
            secs(r.ttft_s),
            secs(r.itl_s),
            secs(r.e2e_s),
            crate::report::num(r.throughput_tok_s),
        ]);
    }
    report.table(t);
    let mut tails = Table::new(
        "served tail latency (continuous batching, same workload)",
        &["Model", "TTFT p50", "TTFT p99", "E2E p50", "E2E p99"],
    );
    for (name, ttft, e2e) in served_tails(fast) {
        tails.row(vec![
            name,
            secs(ttft.p50_s),
            secs(ttft.p99_s),
            secs(e2e.p50_s),
            secs(e2e.p99_s),
        ]);
    }
    report.table(tails);
    report.note(
        "The tail table replays the workload through the continuous-batching scheduler: \
         chunked prefill admits the batch in waves, so p99 TTFT (last wave) runs well \
         ahead of p50 even though all 64 requests arrive together — a spread the \
         static-batch mean cannot show.",
    );
    let best_ttft = results
        .iter()
        .min_by(|a, b| a.2.ttft_s.partial_cmp(&b.2.ttft_s).expect("finite"))
        .expect("non-empty");
    report.note(format!(
        "Fastest TTFT: {} — the paper reports OLMoE-1B-7B fastest, ~70% ahead of \
         DeepSeek-V2-Lite.",
        best_ttft.0
    ));
    report.note(
        "Each model is auto-placed on the smallest H100 TP group that fits (the paper \
         deploys through vLLM on an H100 node).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> Vec<(String, usize, RunMetrics)> {
        measure(true)
    }

    #[test]
    fn covers_all_six_llms() {
        assert_eq!(results().len(), 6);
    }

    #[test]
    fn olmoe_has_fastest_ttft() {
        let rs = results();
        let best = rs
            .iter()
            .min_by(|a, b| a.2.ttft_s.partial_cmp(&b.2.ttft_s).unwrap())
            .unwrap();
        assert_eq!(best.0, "OLMoE-1B-7B");
    }

    #[test]
    fn olmoe_beats_dsv2lite_ttft_by_wide_margin() {
        // Paper: ~70% faster. Accept a broad band around that.
        let rs = results();
        let get = |n: &str| rs.iter().find(|r| r.0 == n).unwrap().2.ttft_s;
        let ratio = get("DeepSeek-V2-Lite") / get("OLMoE-1B-7B");
        assert!(ratio > 1.3, "ratio {ratio}");
    }

    #[test]
    fn large_models_have_larger_e2e() {
        let rs = results();
        let get = |n: &str| rs.iter().find(|r| r.0 == n).unwrap().2.e2e_s;
        assert!(get("Mixtral-8x7B") > get("OLMoE-1B-7B"));
        assert!(get("Phi-3.5-MoE") > get("Qwen1.5-MoE-A2.7B"));
    }

    #[test]
    fn served_ttft_tail_separates_from_median() {
        // All 64 requests arrive at t = 0, but chunked prefill admits them
        // in waves: the p99 TTFT must sit visibly above the median.
        let tails = served_tails(true);
        assert_eq!(tails.len(), 6);
        for (name, ttft, e2e) in &tails {
            assert!(ttft.p50_s <= ttft.p99_s, "{name}");
            assert!(e2e.p50_s <= e2e.p99_s, "{name}");
            assert!(
                ttft.p99_s > 1.2 * ttft.p50_s,
                "{name}: p99 {} p50 {}",
                ttft.p99_s,
                ttft.p50_s
            );
        }
    }

    #[test]
    fn itl_spread_is_substantial() {
        // Paper: ITL varies by nearly 100% between best and worst. Our
        // spread is somewhat compressed (the shared per-step host overhead
        // narrows relative gaps) but remains large; see EXPERIMENTS.md.
        let rs = results();
        let itls: Vec<f64> = rs.iter().map(|r| r.2.itl_s).collect();
        let min = itls.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = itls.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.35, "spread {}", max / min);
    }
}
