//! Figure 3: TTFT, ITL and end-to-end latency of the six LLMs at batch 64
//! and input/output length 2048.

use moe_gpusim::perfmodel::RunMetrics;
use moe_model::registry;
use moe_tensor::Precision;

use crate::common::auto_place;
use crate::report::{secs, ExperimentReport, Table};

/// Workload from the figure caption.
pub const BATCH: usize = 64;
pub const IN_LEN: usize = 2048;
pub const OUT_LEN: usize = 2048;

/// Per-model latency results.
pub fn measure(fast: bool) -> Vec<(String, usize, RunMetrics)> {
    let _ = fast; // analytic model: full lengths are free
    let (input, output) = (IN_LEN, OUT_LEN);
    registry::llms()
        .into_iter()
        .map(|m| {
            let placed = auto_place(&m, Precision::F16, BATCH, input + output)
                .expect("all Fig.3 LLMs fit on <=8 H100s");
            let gpus = placed.cluster().num_devices;
            let run = placed.run(BATCH, input, output).expect("placement fits");
            (m.name, gpus, run)
        })
        .collect()
}

/// Build the report.
pub fn run(fast: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig3",
        "Figure 3: TTFT, ITL and E2E Latency of LLMs (batch 64, in/out 2048)",
    );
    let mut t = Table::new(
        "latency",
        &["Model", "GPUs", "TTFT", "ITL", "E2E", "Throughput tok/s"],
    );
    let results = measure(fast);
    for (name, gpus, r) in &results {
        t.row(vec![
            name.clone(),
            gpus.to_string(),
            secs(r.ttft_s),
            secs(r.itl_s),
            secs(r.e2e_s),
            crate::report::num(r.throughput_tok_s),
        ]);
    }
    report.table(t);
    let best_ttft = results
        .iter()
        .min_by(|a, b| a.2.ttft_s.partial_cmp(&b.2.ttft_s).expect("finite"))
        .expect("non-empty");
    report.note(format!(
        "Fastest TTFT: {} — the paper reports OLMoE-1B-7B fastest, ~70% ahead of \
         DeepSeek-V2-Lite.",
        best_ttft.0
    ));
    report.note(
        "Each model is auto-placed on the smallest H100 TP group that fits (the paper \
         deploys through vLLM on an H100 node).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> Vec<(String, usize, RunMetrics)> {
        measure(true)
    }

    #[test]
    fn covers_all_six_llms() {
        assert_eq!(results().len(), 6);
    }

    #[test]
    fn olmoe_has_fastest_ttft() {
        let rs = results();
        let best = rs
            .iter()
            .min_by(|a, b| a.2.ttft_s.partial_cmp(&b.2.ttft_s).unwrap())
            .unwrap();
        assert_eq!(best.0, "OLMoE-1B-7B");
    }

    #[test]
    fn olmoe_beats_dsv2lite_ttft_by_wide_margin() {
        // Paper: ~70% faster. Accept a broad band around that.
        let rs = results();
        let get = |n: &str| rs.iter().find(|r| r.0 == n).unwrap().2.ttft_s;
        let ratio = get("DeepSeek-V2-Lite") / get("OLMoE-1B-7B");
        assert!(ratio > 1.3, "ratio {ratio}");
    }

    #[test]
    fn large_models_have_larger_e2e() {
        let rs = results();
        let get = |n: &str| rs.iter().find(|r| r.0 == n).unwrap().2.e2e_s;
        assert!(get("Mixtral-8x7B") > get("OLMoE-1B-7B"));
        assert!(get("Phi-3.5-MoE") > get("Qwen1.5-MoE-A2.7B"));
    }

    #[test]
    fn itl_spread_is_substantial() {
        // Paper: ITL varies by nearly 100% between best and worst. Our
        // spread is somewhat compressed (the shared per-step host overhead
        // narrows relative gaps) but remains large; see EXPERIMENTS.md.
        let rs = results();
        let itls: Vec<f64> = rs.iter().map(|r| r.2.itl_s).collect();
        let min = itls.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = itls.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 1.35, "spread {}", max / min);
    }
}
