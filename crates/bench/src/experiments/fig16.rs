//! Figure 16: H100 vs Cerebras CS-3 — latency and throughput of
//! Llama-4-Scout-17B-16E across input/output lengths.
//!
//! Following the paper's setup, the CS-3 replica stores weights at FP8
//! while computing at 16-bit; the H100 baseline runs an 8-GPU TP group
//! (109 B fp16 parameters do not fit fewer devices).

use moe_gpusim::device::Cluster;
use moe_gpusim::parallel::ParallelPlan;
use moe_gpusim::perfmodel::{EngineOptions, PerfModel};
use moe_model::registry::llama4_scout_17b_16e;
use moe_tensor::Precision;

use crate::common::PAPER_LENGTHS;
use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, secs, ExperimentReport, Table};

// The figure does not pin a batch size; batch 64 is used because the
// context-dependence of H100 latency (the "sharp rise beyond 1024") is a
// KV-traffic effect that scales with concurrent sequences.
pub const BATCH: usize = 64;

/// `(len, h100 e2e, cs3 e2e, h100 tok/s, cs3 tok/s)` rows.
pub fn measure(fast: bool) -> Vec<(usize, f64, f64, f64, f64)> {
    let lengths: &[usize] = if fast { &[128, 2048] } else { &PAPER_LENGTHS };
    // Smallest feasible H100 deployment: TP4 with FP8 weights (109 B
    // parameters; fp16 would need 8 GPUs and halve the per-device traffic
    // contrast). Both platforms store weights at FP8, as the paper's CS-3
    // replica does.
    let h100 = PerfModel::new(
        llama4_scout_17b_16e(),
        Cluster::h100_node(4),
        EngineOptions::default()
            .with_plan(ParallelPlan::tensor(4))
            .with_precision(Precision::Fp8E4M3),
    )
    .expect("TP4 fp8 valid");
    let cs3 = PerfModel::new(
        llama4_scout_17b_16e(),
        Cluster::cs3(),
        EngineOptions::default().with_precision(Precision::Fp8E4M3),
    )
    .expect("CS-3 single-device valid");
    lengths
        .iter()
        .map(|&len| {
            let a = h100
                .run(BATCH, len, len, &mut moe_trace::Tracer::disabled(), 0)
                .expect("fits 8xH100");
            let b = cs3
                .run(BATCH, len, len, &mut moe_trace::Tracer::disabled(), 0)
                .expect("fits CS-3");
            (
                len,
                a.e2e_s,
                b.e2e_s,
                a.throughput_tok_s,
                b.throughput_tok_s,
            )
        })
        .collect()
}

/// Build the report.
/// Registry handle.
pub struct Fig16;

impl Experiment for Fig16 {
    fn id(&self) -> &'static str {
        "fig16"
    }
    fn title(&self) -> &'static str {
        "Figure 16: H100 vs CS-3 — Llama-4-Scout-17B-16E Latency and Throughput"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

fn build(fast: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(Fig16.id(), Fig16.title());
    let mut t = Table::new(
        format!("latency / throughput vs in/out length (batch {BATCH})"),
        &[
            "In/out len",
            "H100 E2E",
            "CS-3 E2E",
            "H100 tok/s",
            "CS-3 tok/s",
        ],
    );
    let rows = measure(fast);
    for &(len, ah, ac, th, tc) in &rows {
        t.row(vec![len.to_string(), secs(ah), secs(ac), num(th), num(tc)]);
    }
    report.table(t);
    let first = rows.first().expect("rows");
    let last = rows.last().expect("rows");
    report.note(format!(
        "Latency growth {}->{} tokens: H100 {:.1}x vs CS-3 {:.1}x — the CS-3's \
         weight-stationary wafer avoids the per-step weight streaming that makes H100 \
         latency climb steeply with context.",
        first.0,
        last.0,
        last.1 / first.1,
        last.2 / first.2,
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs3_faster_everywhere() {
        for (len, h100_e2e, cs3_e2e, h100_tp, cs3_tp) in measure(true) {
            assert!(cs3_e2e < h100_e2e, "len {len}");
            assert!(cs3_tp > h100_tp, "len {len}");
        }
    }

    #[test]
    fn h100_latency_grows_more_steeply() {
        let rows = measure(true);
        let (first, last) = (rows.first().unwrap(), rows.last().unwrap());
        let h100_growth = last.1 / first.1;
        let cs3_growth = last.2 / first.2;
        assert!(
            h100_growth > cs3_growth,
            "H100 {h100_growth} vs CS-3 {cs3_growth}"
        );
    }

    #[test]
    fn cs3_advantage_substantial() {
        let rows = measure(true);
        let (_, _, _, h100_tp, cs3_tp) = rows[0];
        assert!(h100_tp < cs3_tp);
        assert!(
            cs3_tp / h100_tp > 1.5,
            "CS-3 advantage {}",
            cs3_tp / h100_tp
        );
    }
}
