//! Figure 17: throughput / latency vs average accuracy for the six LLMs —
//! the performance-efficiency frontier.

use moe_eval::harness::evaluate;
use moe_eval::profiles::capability;
use moe_eval::tasks::lm_task_suite;

use super::fig03;
use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, secs, ExperimentReport, Table};

/// One frontier point.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    pub model: String,
    pub throughput_tok_s: f64,
    pub e2e_s: f64,
    pub avg_accuracy: f64,
}

/// Measure all six LLMs: serving metrics from the Fig.-3 workload,
/// accuracy from the full lm-eval-style harness.
pub fn measure(fast: bool) -> Vec<FrontierPoint> {
    let suite = lm_task_suite();
    fig03::measure(fast)
        .into_iter()
        .map(|(name, _gpus, run)| {
            let profile = capability(&name).expect("all Fig.17 models have profiles");
            let report = evaluate(&name, profile, &suite);
            FrontierPoint {
                model: name,
                throughput_tok_s: run.throughput_tok_s,
                e2e_s: run.e2e_s,
                avg_accuracy: report.average_accuracy(),
            }
        })
        .collect()
}

/// Build the report.
/// Registry handle.
pub struct Fig17;

impl Experiment for Fig17 {
    fn id(&self) -> &'static str {
        "fig17"
    }
    fn title(&self) -> &'static str {
        "Figure 17: Throughput / Latency vs Accuracy for LLMs"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

fn build(fast: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(Fig17.id(), Fig17.title());
    let mut t = Table::new(
        "performance-accuracy frontier",
        &["Model", "Throughput tok/s", "E2E latency", "Avg accuracy"],
    );
    for p in measure(fast) {
        t.row(vec![
            p.model,
            num(p.throughput_tok_s),
            secs(p.e2e_s),
            format!("{:.1}%", p.avg_accuracy * 100.0),
        ]);
    }
    report.table(t);
    report.note(
        "The frontier matches the paper: Qwen3-30B-A3B and Mixtral-8x7B lead accuracy at \
         higher latency; OLMoE-1B-7B leads efficiency at lower accuracy; DeepSeek-V2-Lite \
         and Qwen1.5-MoE sit in the balanced middle; Phi-3.5-MoE pays the most runtime for \
         competitive accuracy.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<FrontierPoint> {
        measure(true)
    }

    fn get(points: &[FrontierPoint], n: &str) -> FrontierPoint {
        points
            .iter()
            .find(|p| p.model == n)
            .expect("model present")
            .clone()
    }

    #[test]
    fn accuracy_leaders_are_large_moes() {
        let ps = points();
        let best = ps
            .iter()
            .max_by(|a, b| a.avg_accuracy.partial_cmp(&b.avg_accuracy).unwrap())
            .unwrap();
        assert_eq!(best.model, "Qwen3-30B-A3B");
        assert!(get(&ps, "Mixtral-8x7B").avg_accuracy > get(&ps, "OLMoE-1B-7B").avg_accuracy);
    }

    #[test]
    fn efficiency_accuracy_tradeoff_exists() {
        let ps = points();
        let olmoe = get(&ps, "OLMoE-1B-7B");
        let mixtral = get(&ps, "Mixtral-8x7B");
        assert!(olmoe.throughput_tok_s > mixtral.throughput_tok_s);
        assert!(olmoe.avg_accuracy < mixtral.avg_accuracy);
        assert!(olmoe.e2e_s < mixtral.e2e_s);
    }

    #[test]
    fn phi_has_poor_efficiency_despite_accuracy() {
        let ps = points();
        let phi = get(&ps, "Phi-3.5-MoE");
        let middle = get(&ps, "DeepSeek-V2-Lite");
        assert!(phi.avg_accuracy > middle.avg_accuracy);
        assert!(phi.throughput_tok_s < middle.throughput_tok_s);
    }

    #[test]
    fn accuracies_in_sane_band() {
        for p in points() {
            assert!(
                (0.35..0.95).contains(&p.avg_accuracy),
                "{}: {}",
                p.model,
                p.avg_accuracy
            );
        }
    }
}
