//! Figure 15: expert-activation-frequency heat maps of the DeepSeek-VL2
//! family and MolmoE-1B on an MME-like task stream, from *real* routing
//! through the engine's routers (see `moe_eval::activation`).

use moe_eval::activation::{activation_study, ActivationReport};
use moe_model::registry::{deepseek_vl2, deepseek_vl2_small, deepseek_vl2_tiny, molmoe_1b};

use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, ExperimentReport, Table};

/// Tokens routed per model (scaled to full-MME counts afterwards).
pub const SAMPLE_TOKENS: usize = 1024;

/// Run the study for the four models of the figure. Results are cached
/// per process (the study routes real tokens and is the one genuinely
/// compute-heavy experiment).
pub fn measure(fast: bool) -> Vec<ActivationReport> {
    static CACHE: std::sync::OnceLock<Vec<ActivationReport>> = std::sync::OnceLock::new();
    let _ = fast; // sample size must stay large enough for stable statistics
    CACHE
        .get_or_init(|| {
            [
                deepseek_vl2_tiny(),
                deepseek_vl2_small(),
                deepseek_vl2(),
                molmoe_1b(),
            ]
            .iter()
            .map(|m| activation_study(m, SAMPLE_TOKENS, 7))
            .collect()
        })
        .clone()
}

/// Build the report.
/// Registry handle.
pub struct Fig15;

impl Experiment for Fig15 {
    fn id(&self) -> &'static str {
        "fig15"
    }
    fn title(&self) -> &'static str {
        "Figure 15: Expert Activation Frequency on MME (DeepSeek-VL2 family vs MolmoE-1B)"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

fn build(fast: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(Fig15.id(), Fig15.title());
    let mut t = Table::new(
        "activation statistics",
        &[
            "Model",
            "Experts",
            "Peak count",
            "Max/mean imbalance",
            "Norm. entropy",
        ],
    );
    let reports = measure(fast);
    for r in &reports {
        t.row(vec![
            r.model.clone(),
            r.num_experts.to_string(),
            r.peak_count.to_string(),
            num(r.mean_imbalance),
            num(r.mean_entropy),
        ]);
    }
    report.table(t);

    // A compact heat-map digest: the top-3 expert shares of layer 0.
    let mut digest = Table::new(
        "layer-0 heat-map digest (top-3 expert shares)",
        &["Model", "1st", "2nd", "3rd", "uniform share"],
    );
    for r in &reports {
        let mut row0: Vec<f64> = r.heatmap[0].clone();
        row0.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        digest.row(vec![
            r.model.clone(),
            format!("{:.1}%", row0[0] * 100.0),
            format!("{:.1}%", row0[1] * 100.0),
            format!("{:.1}%", row0[2] * 100.0),
            format!("{:.1}%", 100.0 / r.num_experts as f64),
        ]);
    }
    report.table(digest);
    report.note(
        "DeepSeek-VL2 models (aux-loss balanced) activate experts near-uniformly; \
         MolmoE-1B routes far more skewed, with single-expert counts several times \
         higher (paper: MolmoE peaks near 1M vs ~290K for DeepSeek-VL2).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn molmoe_is_the_outlier() {
        let rs = measure(true);
        let molmoe = rs.iter().find(|r| r.model == "MolmoE-1B").expect("present");
        for r in rs.iter().filter(|r| r.model != "MolmoE-1B") {
            assert!(
                molmoe.mean_imbalance > r.mean_imbalance,
                "{}: {} vs molmoe {}",
                r.model,
                r.mean_imbalance,
                molmoe.mean_imbalance
            );
            assert!(molmoe.mean_entropy < r.mean_entropy);
        }
    }

    #[test]
    fn peak_count_magnitudes() {
        let rs = measure(true);
        let molmoe = rs.iter().find(|r| r.model == "MolmoE-1B").expect("present");
        let tiny = rs
            .iter()
            .find(|r| r.model == "DeepSeek-VL2-Tiny")
            .expect("present");
        assert!(molmoe.peak_count > 2 * tiny.peak_count);
    }

    #[test]
    fn heatmaps_have_model_shapes() {
        let rs = measure(true);
        for r in &rs {
            assert_eq!(r.heatmap.len(), r.num_layers);
            assert!(r.heatmap.iter().all(|row| row.len() == r.num_experts));
        }
    }
}
