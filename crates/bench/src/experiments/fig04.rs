//! Figure 4: TTFT, ITL and end-to-end latency of the DeepSeek-VL2 family.

use moe_gpusim::perfmodel::RunMetrics;
use moe_model::registry;
use moe_runtime::metrics::LatencySummary;
use moe_runtime::simserver::serve_static_batch;
use moe_tensor::Precision;

use crate::common::auto_place;
use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, secs, ExperimentReport, Table};

/// Registry handle.
pub struct Fig04;

impl Experiment for Fig04 {
    fn id(&self) -> &'static str {
        "fig4"
    }
    fn title(&self) -> &'static str {
        "Figure 4: TTFT, ITL and E2E Latency of VLMs"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

/// Workload: one image per sample plus a text prompt (the caption does not
/// pin lengths; we use batch 16, 1024/1024, one image — recorded in
/// EXPERIMENTS.md).
pub const BATCH: usize = 16;
pub const IMAGES: usize = 1;
pub const IN_LEN: usize = 1024;
pub const OUT_LEN: usize = 1024;

/// Per-model VLM latency results.
pub fn measure(fast: bool) -> Vec<(String, RunMetrics)> {
    let _ = fast; // analytic model: full lengths are free
    let (input, output) = (IN_LEN, OUT_LEN);
    registry::vlms()
        .into_iter()
        .map(|m| {
            let image_tokens = m.vision.as_ref().expect("VLM has tower").tokens_per_image;
            let placed = auto_place(&m, Precision::F16, BATCH, input + output + image_tokens)
                .expect("VL2 family fits");
            let run = placed.run_vlm(BATCH, IMAGES, input, output).expect("fits");
            (m.name, run)
        })
        .collect()
}

/// The language-model side of the workload through the serving path,
/// with the image folded in as `tokens_per_image` extra prompt tokens
/// (the vision tower runs outside the serving loop). Returns
/// `(model, ttft summary, e2e summary)` per-request distributions.
pub fn served_tails(fast: bool) -> Vec<(String, LatencySummary, LatencySummary)> {
    let _ = fast; // analytic model: full lengths are free
    registry::vlms()
        .into_iter()
        .map(|m| {
            let image_tokens = m.vision.as_ref().expect("VLM has tower").tokens_per_image;
            let prompt = IN_LEN + IMAGES * image_tokens;
            let placed =
                auto_place(&m, Precision::F16, BATCH, prompt + OUT_LEN).expect("VL2 family fits");
            let report = serve_static_batch(
                placed,
                BATCH,
                prompt,
                OUT_LEN,
                &mut moe_trace::Tracer::disabled(),
            );
            (m.name, report.ttft, report.e2e)
        })
        .collect()
}

/// Build the report.
fn build(fast: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(Fig04.id(), Fig04.title());
    let mut t = Table::new("latency", &["Model", "TTFT", "ITL", "E2E", "Samples/s"]);
    let results = measure(fast);
    for (name, r) in &results {
        t.row(vec![
            name.clone(),
            secs(r.ttft_s),
            secs(r.itl_s),
            secs(r.e2e_s),
            num(r.samples_per_s),
        ]);
    }
    report.table(t);
    let mut tails = Table::new(
        "served tail latency (continuous batching, image folded into prompt)",
        &["Model", "TTFT p50", "TTFT p99", "E2E p50", "E2E p99"],
    );
    for (name, ttft, e2e) in served_tails(fast) {
        tails.row(vec![
            name,
            secs(ttft.p50_s),
            secs(ttft.p99_s),
            secs(e2e.p50_s),
            secs(e2e.p99_s),
        ]);
    }
    report.table(tails);
    report.note(
        "Tail rows serve the LM side with the image's visual tokens as extra prompt \
         (the vision tower runs outside the serving loop). At batch 16 the whole batch \
         fits in one chunked-prefill admission wave, so p50 = p99 — a flat tail, unlike \
         the wave-spread p99 of Figure 3's batch-64 workload.",
    );
    let tiny = &results[0].1;
    let base = &results[2].1;
    report.note(format!(
        "Tiny-vs-Base gaps — TTFT {:.0}%, ITL {:.0}%, E2E {:.0}% (paper: ~30% TTFT, ~240% \
         ITL, >260% E2E).",
        100.0 * (base.ttft_s / tiny.ttft_s - 1.0),
        100.0 * (base.itl_s / tiny.itl_s - 1.0),
        100.0 * (base.e2e_s / tiny.e2e_s - 1.0),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_vl2_family_in_size_order() {
        let rs = measure(true);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].0, "DeepSeek-VL2-Tiny");
        assert_eq!(rs[2].0, "DeepSeek-VL2");
    }

    #[test]
    fn latency_grows_with_model_size() {
        let rs = measure(true);
        assert!(rs[0].1.e2e_s < rs[1].1.e2e_s);
        assert!(rs[1].1.e2e_s < rs[2].1.e2e_s);
        assert!(rs[0].1.ttft_s < rs[2].1.ttft_s);
    }

    #[test]
    fn vlm_gaps_exceed_llm_gaps() {
        // The paper's point: VLM latency gaps are more pronounced. Compare
        // Tiny-vs-Base E2E ratio against the LLM best/worst E2E ratio of
        // two mid-size LLMs.
        let rs = measure(true);
        let vlm_ratio = rs[2].1.e2e_s / rs[0].1.e2e_s;
        assert!(vlm_ratio > 1.5, "vlm ratio {vlm_ratio}");
    }

    #[test]
    fn served_tails_cover_family_and_order() {
        let tails = served_tails(true);
        assert_eq!(tails.len(), 3);
        for (name, ttft, e2e) in &tails {
            assert!(ttft.p50_s <= ttft.p99_s, "{name}");
            assert!(e2e.p50_s <= e2e.p99_s, "{name}");
        }
        // Larger models keep the latency ordering in the tail too.
        assert!(tails[0].2.p99_s < tails[2].2.p99_s);
    }

    #[test]
    fn samples_per_s_orders_inverse_to_latency() {
        let rs = measure(true);
        assert!(rs[0].1.samples_per_s > rs[2].1.samples_per_s);
    }
}
