//! Shared machinery for the Section-5 hyperparameter study (Figures 7-9):
//! the Mixtral-skeleton grid over FFN dimension x expert count x active
//! experts on 4 H100s (TP4), batch 16, input/output 2048, with OOM points
//! reported as missing — exactly the paper's protocol.

use moe_gpusim::parallel::ParallelPlan;
use moe_model::variants::{mixtral_variant, ACTIVE_COUNTS, EXPERT_COUNTS, FFN_DIMS};
use moe_tensor::Precision;

use crate::common::place_with_plan;

/// Batch/lengths from the figure captions.
pub const BATCH: usize = 16;
pub const IN_LEN: usize = 1024;
pub const OUT_LEN: usize = 1024;

/// One measured grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridResult {
    pub ffn_dim: usize,
    pub num_experts: usize,
    pub top_k: usize,
    /// `None` = out of memory on 4 H100s (a gap in the figure).
    pub throughput: Option<f64>,
}

/// Run the full (or reduced) grid.
pub fn run_grid(fast: bool) -> Vec<GridResult> {
    let ffns: &[usize] = if fast { &[1792, 14_336] } else { &FFN_DIMS };
    let experts: &[usize] = if fast { &[8, 64] } else { &EXPERT_COUNTS };
    let actives: &[usize] = if fast { &[1, 8] } else { &ACTIVE_COUNTS };
    // The performance model is pure arithmetic, so `fast` only shrinks the
    // grid — lengths stay at the paper's values (the TopK gap is largely a
    // prefill-compute effect and vanishes at short lengths).
    let (input, output) = (IN_LEN, OUT_LEN);

    let mut out = Vec::new();
    for &ffn in ffns {
        for &e in experts {
            for &k in actives {
                let cfg = mixtral_variant(ffn, e, k);
                let model = place_with_plan(&cfg, Precision::F16, ParallelPlan::tensor(4), true)
                    .expect("plan is structurally valid");
                let throughput = model
                    .run(BATCH, input, output, &mut moe_trace::Tracer::disabled(), 0)
                    .ok()
                    .map(|r| r.throughput_tok_s);
                out.push(GridResult {
                    ffn_dim: ffn,
                    num_experts: e,
                    top_k: k,
                    throughput,
                });
            }
        }
    }
    out
}

/// Lookup helper.
pub fn at(grid: &[GridResult], ffn: usize, e: usize, k: usize) -> Option<f64> {
    grid.iter()
        .find(|g| g.ffn_dim == ffn && g.num_experts == e && g.top_k == k)
        .and_then(|g| g.throughput)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<GridResult> {
        run_grid(true)
    }

    #[test]
    fn oom_gaps_at_extremes_only() {
        let g = grid();
        // The largest configuration must OOM on 4 H100s...
        assert!(at(&g, 14_336, 64, 1).is_none());
        // ...while the Mixtral-like and small corners fit.
        assert!(at(&g, 14_336, 8, 1).is_some());
        assert!(at(&g, 1792, 8, 1).is_some());
        assert!(at(&g, 1792, 64, 8).is_some());
    }

    #[test]
    fn throughput_falls_with_ffn_dim() {
        // Fig. 7: steep decline from 1792 to 14336 at fixed experts.
        let g = grid();
        for (e, k) in [(8usize, 1usize), (8, 8)] {
            let small = at(&g, 1792, e, k).unwrap();
            let large = at(&g, 14_336, e, k).unwrap();
            assert!(large < small * 0.7, "e={e} k={k}: {small} -> {large}");
        }
    }

    #[test]
    fn throughput_falls_with_active_experts() {
        // Fig. 9: TopK 1 -> 8 costs heavily, more so at large FFN.
        let g = grid();
        let drop_small_ffn = 1.0 - at(&g, 1792, 8, 8).unwrap() / at(&g, 1792, 8, 1).unwrap();
        let drop_large_ffn = 1.0 - at(&g, 14_336, 8, 8).unwrap() / at(&g, 14_336, 8, 1).unwrap();
        assert!(drop_small_ffn > 0.0);
        assert!(
            drop_large_ffn > drop_small_ffn,
            "small {drop_small_ffn:.3} large {drop_large_ffn:.3}"
        );
    }

    #[test]
    fn expert_count_mild_effect_at_small_ffn() {
        // Fig. 8: at small FFN dims, more experts maintains (or mildly
        // changes) throughput rather than collapsing it.
        let g = grid();
        let base = at(&g, 1792, 8, 1).unwrap();
        let wide = at(&g, 1792, 64, 1).unwrap();
        assert!(wide > base * 0.5, "base {base} wide {wide}");
    }
}
