//! `ext-scale`: planet-scale serving simulations on the sharded
//! cluster core.
//!
//! Two studies, both on the diurnal think-time workload
//! ([`WorkloadSpec::diurnal_users`]: a population of users issuing a
//! request every ~5 simulated minutes, so offered load tracks a
//! day/night cycle):
//!
//! * **Scale ladder** — deployments from tens to a thousand OLMoE
//!   replicas fed lazily via [`run_sharded_stream`], with crash faults
//!   scaled to fleet size. The table records the simulator's own scale
//!   evidence alongside serving quality: total events processed and the
//!   `peak_live` high-water mark, which stays a tiny fraction of the
//!   submitted request count because aggregation is streaming
//!   (histograms, not per-request rows).
//! * **Multi-region tiers** — one deployment split across us-east /
//!   eu-west / ap-south region tiers whose network round trip is priced
//!   into user-perceived TTFT via [`ClusterConfig::latency_offset_s`].
//!   Per-tier rows come from the same sharded run's per-shard reports,
//!   merged tier by tier.
//!
//! Wall-clock throughput (events/sec) is deliberately absent here —
//! experiments report simulated metrics only; the committed trajectory
//! lives in `BENCH_cluster.json` via `cargo bench -p moe-bench --bench
//! cluster` (see `docs/SCALE.md`).

use moe_cluster::shard::merge_reports;
use moe_cluster::{
    run_sharded_detailed, run_sharded_stream, ClusterConfig, ClusterReport, FaultPlan, RegionTier,
    RoutePolicy, ShardPlan, WorkloadSpec,
};
use moe_gpusim::perfmodel::PerfModel;
use moe_model::registry::olmoe_1b_7b;
use moe_runtime::simserver::scheduler_config_for;

use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, secs, ExperimentReport, Table};

/// Registry handle.
pub struct ExtScale;

impl Experiment for ExtScale {
    fn id(&self) -> &'static str {
        "ext-scale"
    }
    fn title(&self) -> &'static str {
        "Extension: Planet-Scale Sharded Serving (diurnal users, OLMoE-1B-7B/H100)"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

/// TTFT service-level objective for attainment columns. Looser than the
/// single-cluster SLO because the remote tiers carry up to 120 ms of
/// network round trip before the first token can land.
pub const SCALE_TTFT_SLO_S: f64 = 0.25;

/// Mean think time between a user's requests (s).
const THINK_S: f64 = 300.0;

/// One scale-ladder rung: a sharded deployment and its offered load.
struct Rung {
    shards: usize,
    replicas_per_shard: usize,
    users: u64,
    requests: usize,
}

impl Rung {
    fn replicas(&self) -> usize {
        self.shards * self.replicas_per_shard
    }
}

fn ladder(fast: bool) -> Vec<Rung> {
    if fast {
        vec![
            Rung {
                shards: 4,
                replicas_per_shard: 4,
                users: 10_000,
                requests: 3_000,
            },
            Rung {
                shards: 8,
                replicas_per_shard: 8,
                users: 40_000,
                requests: 6_000,
            },
        ]
    } else {
        vec![
            Rung {
                shards: 8,
                replicas_per_shard: 8,
                users: 40_000,
                requests: 12_000,
            },
            Rung {
                shards: 16,
                replicas_per_shard: 16,
                users: 150_000,
                requests: 40_000,
            },
            Rung {
                shards: 32,
                replicas_per_shard: 32,
                users: 600_000,
                requests: 100_000,
            },
        ]
    }
}

fn base_config() -> ClusterConfig {
    let mut cfg = ClusterConfig {
        policy: RoutePolicy::LeastOutstanding,
        seed: 42,
        ..ClusterConfig::default()
    };
    cfg.router.ttft_timeout_s = 2.0;
    cfg
}

/// Crash faults proportional to fleet size: one outage per ~100
/// replicas over the busy first 15 simulated seconds.
fn faults_for(replicas: usize) -> FaultPlan {
    FaultPlan::random_crashes(42, replicas, 15.0, (replicas / 100).max(1), 5.0)
}

fn run_rung(model: &PerfModel, rung: &Rung) -> ClusterReport {
    let plan = ShardPlan::single_region(rung.shards, rung.replicas_per_shard);
    let spec = WorkloadSpec::diurnal_users(rung.users, THINK_S, rung.requests);
    run_sharded_stream(
        model,
        2048,
        &base_config(),
        &plan,
        &faults_for(rung.replicas()),
        &spec,
        42,
    )
}

/// The multi-region plan: shard counts scale with `per_tier` so the
/// fast preset stays a smoke test.
fn region_plan(per_tier: usize, replicas_per_shard: usize) -> ShardPlan {
    ShardPlan {
        replicas_per_shard,
        tiers: vec![
            RegionTier {
                name: "us-east".to_string(),
                shards: 2 * per_tier,
                rtt_s: 0.0,
            },
            RegionTier {
                name: "eu-west".to_string(),
                shards: per_tier,
                rtt_s: 0.03,
            },
            RegionTier {
                name: "ap-south".to_string(),
                shards: per_tier,
                rtt_s: 0.12,
            },
        ],
    }
}

fn build(fast: bool) -> ExperimentReport {
    let model = PerfModel::h100(olmoe_1b_7b());
    let mut report = ExperimentReport::new(
        "ext-scale",
        "Extension: Planet-Scale Sharded Serving (diurnal users, OLMoE-1B-7B/H100)",
    );

    // Study 1: the scale ladder, fully streaming.
    let mut t = Table::new(
        "Scale ladder (streaming arrivals, crash faults, diurnal traffic)",
        &[
            "replicas",
            "users",
            "submitted",
            "completed",
            "events",
            "peak-live",
            "live/submitted",
            "makespan",
            "tok/s (sim)",
            "p99 TTFT",
            "SLO@250ms",
        ],
    );
    for rung in ladder(fast) {
        let r = run_rung(&model, &rung);
        t.row(vec![
            rung.replicas().to_string(),
            rung.users.to_string(),
            r.submitted.to_string(),
            r.completed.to_string(),
            r.events.to_string(),
            r.peak_live.to_string(),
            num(r.peak_live as f64 / (r.submitted as f64).max(1.0)),
            secs(r.makespan_s),
            num(r.throughput_tok_s),
            secs(r.ttft.p99_s),
            num(r.slo_attainment(SCALE_TTFT_SLO_S)),
        ]);
    }
    report.table(t);
    report.note(
        "peak-live is the simulator's memory high-water mark in requests: it tracks \
         concurrency (users x duty cycle), not trace length, because latency aggregation \
         streams into fixed-size histograms and arrivals are generated lazily per shard.",
    );

    // Study 2: multi-region tiers over one sharded deployment.
    let (per_tier, per_shard, users, requests) = if fast {
        (2, 4, 12_000, 4_000)
    } else {
        (8, 16, 250_000, 60_000)
    };
    let plan = region_plan(per_tier, per_shard);
    let spec = WorkloadSpec::diurnal_users(users, THINK_S, requests);
    let trace = moe_cluster::generate(&spec, 42);
    let sched = scheduler_config_for(&model, 2048);
    let (merged, per_shard_reports) = run_sharded_detailed(
        &model,
        sched,
        &base_config(),
        &plan,
        &faults_for(plan.replicas()),
        &trace,
    );
    let mut t = Table::new(
        "Multi-region tiers (network RTT priced into user-perceived TTFT)",
        &[
            "tier",
            "shards",
            "replicas",
            "rtt",
            "submitted",
            "completed",
            "p50 TTFT",
            "p99 TTFT",
            "SLO@250ms",
        ],
    );
    let mut base = 0;
    for tier in &plan.tiers {
        let slice = &per_shard_reports[base..base + tier.shards];
        base += tier.shards;
        let tr = merge_reports(slice);
        t.row(vec![
            tier.name.clone(),
            tier.shards.to_string(),
            (tier.shards * plan.replicas_per_shard).to_string(),
            secs(tier.rtt_s),
            tr.submitted.to_string(),
            tr.completed.to_string(),
            secs(tr.ttft.p50_s),
            secs(tr.ttft.p99_s),
            num(tr.slo_attainment(SCALE_TTFT_SLO_S)),
        ]);
    }
    t.row(vec![
        "all".to_string(),
        plan.shards().to_string(),
        plan.replicas().to_string(),
        "-".to_string(),
        merged.submitted.to_string(),
        merged.completed.to_string(),
        secs(merged.ttft.p50_s),
        secs(merged.ttft.p99_s),
        num(merged.slo_attainment(SCALE_TTFT_SLO_S)),
    ]);
    report.table(t);
    report.note(
        "Tier rows are merged from the same run's per-shard reports; the deployment row \
         merges all of them, so user-perceived tails blend the zero-RTT home region with \
         the +120 ms ap-south tier. Cluster-side scheduling is identical across tiers — \
         only the recorded latency samples shift.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_scale_report_is_populated_and_consistent() {
        let report = build(true);
        assert_eq!(report.id, "ext-scale");
        assert_eq!(report.tables.len(), 2);
        // Ladder rows: one per rung.
        assert_eq!(report.tables[0].rows.len(), 2);
        // Tier rows: three tiers plus the merged deployment row.
        assert_eq!(report.tables[1].rows.len(), 4);
        let rendered = report.render();
        assert!(rendered.contains("ap-south"));
        assert!(rendered.contains("peak-live"));
    }
}
