//! Figure 18: throughput / latency vs average accuracy for the
//! DeepSeek-VL2 family.

use moe_eval::harness::evaluate;
use moe_eval::profiles::capability;
use moe_eval::tasks::vlm_task_suite;

use super::fig04;
use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, secs, ExperimentReport, Table};

/// One frontier point (samples/s is the paper's VLM throughput metric).
#[derive(Debug, Clone, PartialEq)]
pub struct VlmFrontierPoint {
    pub model: String,
    pub samples_per_s: f64,
    pub e2e_s: f64,
    pub avg_accuracy: f64,
}

/// Measure the three VLMs.
pub fn measure(fast: bool) -> Vec<VlmFrontierPoint> {
    let suite = vlm_task_suite();
    fig04::measure(fast)
        .into_iter()
        .map(|(name, run)| {
            let profile = capability(&name).expect("all Fig.18 models have profiles");
            let report = evaluate(&name, profile, &suite);
            VlmFrontierPoint {
                model: name,
                samples_per_s: run.samples_per_s,
                e2e_s: run.e2e_s,
                avg_accuracy: report.average_accuracy(),
            }
        })
        .collect()
}

/// Build the report.
/// Registry handle.
pub struct Fig18;

impl Experiment for Fig18 {
    fn id(&self) -> &'static str {
        "fig18"
    }
    fn title(&self) -> &'static str {
        "Figure 18: Throughput / Latency vs Accuracy for VLMs"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

fn build(fast: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(Fig18.id(), Fig18.title());
    let mut t = Table::new(
        "performance-accuracy frontier",
        &["Model", "Samples/s", "E2E latency", "Avg accuracy"],
    );
    for p in measure(fast) {
        t.row(vec![
            p.model,
            num(p.samples_per_s),
            secs(p.e2e_s),
            format!("{:.1}%", p.avg_accuracy * 100.0),
        ]);
    }
    report.table(t);
    report.note(
        "As in the paper: Tiny is fastest and least accurate, the Base model most \
         accurate and slowest, Small the balanced middle ground.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fast_base_accurate() {
        let ps = measure(true);
        assert_eq!(ps.len(), 3);
        let tiny = &ps[0];
        let small = &ps[1];
        let base = &ps[2];
        assert!(tiny.samples_per_s > small.samples_per_s);
        assert!(small.samples_per_s > base.samples_per_s);
        assert!(tiny.avg_accuracy < small.avg_accuracy);
        assert!(small.avg_accuracy < base.avg_accuracy);
        assert!(tiny.e2e_s < base.e2e_s);
    }

    #[test]
    fn vlm_accuracy_below_llm_leaders() {
        // VLM multimodal accuracy sits below top LLM language accuracy —
        // a sanity cross-check between the two frontiers.
        let vlm_best = measure(true)
            .into_iter()
            .map(|p| p.avg_accuracy)
            .fold(0.0, f64::max);
        assert!((0.3..0.8).contains(&vlm_best));
    }
}
