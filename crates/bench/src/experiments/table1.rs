//! Table 1: comparison of Mixture-of-Experts model architectures.

use moe_model::params::{human_params, ParamBreakdown};
use moe_model::registry;
use moe_model::Modality;

use crate::experiment::{ExpCtx, Experiment};
use crate::report::{ExperimentReport, Table};

/// Registry handle.
pub struct Table1;

impl Experiment for Table1 {
    fn id(&self) -> &'static str {
        "table1"
    }
    fn title(&self) -> &'static str {
        "Table 1: Comparison of MoE Model Architectures"
    }
    fn run(&self, _ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build()
    }
}

/// The nine Table-1 models, in paper order.
pub fn table1_models() -> Vec<moe_model::ModelConfig> {
    let mut v = registry::llms();
    v.extend(registry::vlms());
    v
}

/// Build the report.
fn build() -> ExperimentReport {
    let mut report = ExperimentReport::new(Table1.id(), Table1.title());
    let mut t = Table::new(
        "architectures",
        &[
            "Model",
            "Modality",
            "#Layers",
            "Hidden",
            "FFN Dim",
            "#Experts",
            "#Active",
            "Size (ours)",
            "Active (ours)",
            "Size (paper)",
            "Active (paper)",
        ],
    );
    for m in table1_models() {
        let b = ParamBreakdown::of(&m);
        let moe = m.moe.as_ref().expect("all Table-1 models are MoEs");
        t.row(vec![
            m.name.clone(),
            match m.modality {
                Modality::Text => "Text".into(),
                Modality::TextImage => "Text+Image".into(),
            },
            m.num_layers.to_string(),
            m.hidden_size.to_string(),
            m.table_ffn_dim().to_string(),
            moe.num_experts.to_string(),
            moe.top_k.to_string(),
            human_params(b.total()),
            human_params(b.active()),
            m.reported_total_params
                .map(human_params)
                .unwrap_or_default(),
            m.reported_active_params
                .map(human_params)
                .unwrap_or_default(),
        ]);
    }
    report.table(t);
    report.note(
        "Structural hyperparameters follow the released model configs; where the paper's \
         printed FFN dimension differs (Qwen1.5-MoE, Qwen3-30B, OLMoE, DeepSeek-VL2), the \
         printed value is shown and the structural value drives all modeling.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_nine_rows() {
        let r = build();
        assert_eq!(r.tables[0].rows.len(), 9);
    }

    #[test]
    fn sizes_track_reported_values() {
        for m in table1_models() {
            let b = ParamBreakdown::of(&m);
            let err = b.total_error_vs_reported(&m).expect("all report sizes");
            assert!(err < 0.12, "{}", m.name);
        }
    }

    #[test]
    fn row_order_matches_paper() {
        let r = build();
        assert_eq!(r.tables[0].rows[0][0], "Mixtral-8x7B");
        assert_eq!(r.tables[0].rows[8][0], "DeepSeek-VL2");
    }
}
