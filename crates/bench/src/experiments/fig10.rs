//! Figure 10: Mixtral-8x7B throughput at FP16 vs FP8 — batch sweep and
//! input/output-length sweep on H100.

use moe_gpusim::parallel::ParallelPlan;
use moe_model::registry::mixtral_8x7b;
use moe_tensor::Precision;

use crate::common::{place_with_plan, PAPER_BATCHES, PAPER_LENGTHS};
use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, ExperimentReport, Table};

/// Fixed placement: both precisions on TP2 so the comparison is apples to
/// apples (fp16 Mixtral cannot fit one 80 GB H100).
const TP: usize = 2;

/// `(x, fp16 tok/s, fp8 tok/s)` series.
pub fn batch_series(fast: bool) -> Vec<(usize, f64, f64)> {
    let batches: &[usize] = if fast { &[1, 64] } else { &PAPER_BATCHES };
    let (input, output) = (1024, 1024);
    series(batches.iter().map(|&b| (b, b, input, output)).collect())
}

/// Length sweep at batch 16 (input = output = len).
pub fn length_series(fast: bool) -> Vec<(usize, f64, f64)> {
    let lengths: &[usize] = if fast { &[128, 2048] } else { &PAPER_LENGTHS };
    series(lengths.iter().map(|&l| (l, 16, l, l)).collect())
}

fn series(points: Vec<(usize, usize, usize, usize)>) -> Vec<(usize, f64, f64)> {
    let f16 = place_with_plan(
        &mixtral_8x7b(),
        Precision::F16,
        ParallelPlan::tensor(TP),
        true,
    )
    .expect("valid plan");
    let f8 = place_with_plan(
        &mixtral_8x7b(),
        Precision::Fp8E4M3,
        ParallelPlan::tensor(TP),
        true,
    )
    .expect("valid plan");
    points
        .into_iter()
        .map(|(x, batch, input, output)| {
            let a = f16
                .run(batch, input, output, &mut moe_trace::Tracer::disabled(), 0)
                .expect("fits TP2")
                .throughput_tok_s;
            let b = f8
                .run(batch, input, output, &mut moe_trace::Tracer::disabled(), 0)
                .expect("fits TP2")
                .throughput_tok_s;
            (x, a, b)
        })
        .collect()
}

fn table(name: &str, x_label: &str, s: &[(usize, f64, f64)]) -> Table {
    let mut t = Table::new(name, &[x_label, "FP16 tok/s", "FP8 tok/s", "FP8 gain"]);
    for &(x, a, b) in s {
        t.row(vec![
            x.to_string(),
            num(a),
            num(b),
            format!("{}%", num(100.0 * (b / a - 1.0))),
        ]);
    }
    t
}

/// Build the report.
/// Registry handle.
pub struct Fig10;

impl Experiment for Fig10 {
    fn id(&self) -> &'static str {
        "fig10"
    }
    fn title(&self) -> &'static str {
        "Figure 10: Mixtral-8x7B FP16 vs FP8 on H100 (TP2)"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

fn build(fast: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(Fig10.id(), Fig10.title());
    report.table(table(
        "batch sweep (in/out 1024)",
        "Batch",
        &batch_series(fast),
    ));
    report.table(table(
        "length sweep (batch 16)",
        "In/out length",
        &length_series(fast),
    ));
    report.note(
        "FP8 outperforms FP16 across the board, with the gap widening at larger batch \
         sizes and staying stable across sequence lengths (paper: up to 25-30% at the \
         largest batch; 20-25% across lengths).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp8_wins_everywhere() {
        for (x, a, b) in batch_series(true).into_iter().chain(length_series(true)) {
            assert!(b > a, "x={x}: fp16 {a} vs fp8 {b}");
        }
    }

    #[test]
    fn fp8_gain_in_paper_band_at_large_batch() {
        let s = batch_series(true);
        let (_, a, b) = s.last().copied().expect("non-empty");
        let gain = b / a - 1.0;
        assert!((0.10..0.60).contains(&gain), "gain {gain}");
    }

    #[test]
    fn gain_widens_with_batch() {
        let s = batch_series(true);
        let g1 = s[0].2 / s[0].1;
        let g64 = s.last().expect("non-empty").2 / s.last().expect("non-empty").1;
        assert!(g64 > g1 * 0.95, "g1 {g1} g64 {g64}");
    }

    #[test]
    fn gain_stable_across_lengths() {
        let s = length_series(true);
        let gains: Vec<f64> = s.iter().map(|&(_, a, b)| b / a - 1.0).collect();
        let min = gains.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = gains.iter().cloned().fold(0.0, f64::max);
        assert!(max - min < 0.25, "gains {gains:?}");
    }
}
