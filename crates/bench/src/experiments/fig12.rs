//! Figure 12: speculative-decoding performance on target Qwen3-30B-A3B
//! with the four Qwen3 dense draft models — throughput vs input length and
//! vs number of speculative (draft) tokens.

use moe_gpusim::parallel::ParallelPlan;
use moe_gpusim::perfmodel::PerfModel;
use moe_gpusim::spec::{acceptance_rate, spec_run, SpecParams};
use moe_model::registry::{qwen3_0_6b, qwen3_1_7b, qwen3_30b_a3b, qwen3_4b, qwen3_8b};
use moe_tensor::Precision;

use crate::common::place_with_plan;
use crate::experiment::{ExpCtx, Experiment};
use crate::report::{num, ExperimentReport, Table};

pub const BATCH: usize = 16;
pub const OUT_LEN: usize = 256;
pub const DEFAULT_GAMMA: usize = 3;

/// Input lengths for the left panel.
pub const INPUT_LENS: [usize; 4] = [128, 512, 1024, 2048];

/// Draft-token counts for the right panel.
pub const GAMMAS: [usize; 6] = [1, 2, 3, 5, 7, 9];

fn target() -> PerfModel {
    place_with_plan(
        &qwen3_30b_a3b(),
        Precision::F16,
        ParallelPlan::tensor(2),
        true,
    )
    .expect("Qwen3-30B fits TP2")
}

/// The four draft models with their placements (colocated on the target's
/// devices, as vLLM does).
pub fn drafts() -> Vec<(String, PerfModel, f64)> {
    let tgt = qwen3_30b_a3b();
    [qwen3_0_6b(), qwen3_1_7b(), qwen3_4b(), qwen3_8b()]
        .into_iter()
        .map(|d| {
            let alpha = acceptance_rate(&d, &tgt);
            let placed = place_with_plan(&d, Precision::F16, ParallelPlan::tensor(2), true)
                .expect("drafts fit");
            (d.name.clone(), placed, alpha)
        })
        .collect()
}

/// Left panel: `(input_len, per-draft tok/s)` rows.
pub fn by_input_length(fast: bool) -> Vec<(usize, Vec<(String, f64)>)> {
    let lens: &[usize] = if fast { &[128, 2048] } else { &INPUT_LENS };
    let target = target();
    let drafts = drafts();
    lens.iter()
        .map(|&len| {
            let row = drafts
                .iter()
                .map(|(name, draft, alpha)| {
                    let r = spec_run(
                        &target,
                        draft,
                        SpecParams {
                            gamma: DEFAULT_GAMMA,
                            alpha: *alpha,
                        },
                        BATCH,
                        len,
                        OUT_LEN,
                    )
                    .expect("fits");
                    (name.clone(), r.throughput_tok_s)
                })
                .collect();
            (len, row)
        })
        .collect()
}

/// Right panel: `(gamma, per-draft tok/s)` rows at input 1024.
pub fn by_gamma(fast: bool) -> Vec<(usize, Vec<(String, f64)>)> {
    let gammas: &[usize] = if fast { &[1, 3, 9] } else { &GAMMAS };
    let target = target();
    let drafts = drafts();
    gammas
        .iter()
        .map(|&gamma| {
            let row = drafts
                .iter()
                .map(|(name, draft, alpha)| {
                    let r = spec_run(
                        &target,
                        draft,
                        SpecParams {
                            gamma,
                            alpha: *alpha,
                        },
                        BATCH,
                        1024,
                        OUT_LEN,
                    )
                    .expect("fits");
                    (name.clone(), r.throughput_tok_s)
                })
                .collect();
            (gamma, row)
        })
        .collect()
}

fn panel(name: &str, x_label: &str, rows: &[(usize, Vec<(String, f64)>)]) -> Table {
    let mut cols = vec![x_label.to_string()];
    cols.extend(rows[0].1.iter().map(|(n, _)| n.clone()));
    let mut t = Table::new(name, &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for (x, series) in rows {
        let mut row = vec![x.to_string()];
        row.extend(series.iter().map(|(_, v)| num(*v)));
        t.row(row);
    }
    t
}

/// Build the report.
/// Registry handle.
pub struct Fig12;

impl Experiment for Fig12 {
    fn id(&self) -> &'static str {
        "fig12"
    }
    fn title(&self) -> &'static str {
        "Figure 12: Speculative Decoding on Qwen3-30B-A3B with Qwen3 Drafts"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

fn build(fast: bool) -> ExperimentReport {
    let mut report = ExperimentReport::new(Fig12.id(), Fig12.title());
    report.table(panel(
        "throughput vs input length (gamma=3, tok/s)",
        "Input len",
        &by_input_length(fast),
    ));
    report.table(panel(
        "throughput vs draft tokens (input 1024, tok/s)",
        "Gamma",
        &by_gamma(fast),
    ));
    let vanilla = target()
        .run(BATCH, 1024, OUT_LEN, &mut moe_trace::Tracer::disabled(), 0)
        .expect("fits")
        .throughput_tok_s;
    report.note(format!(
        "Vanilla (no speculation) throughput at input 1024: {} tok/s.",
        num(vanilla)
    ));
    report.note(
        "Qwen3-1.7B delivers the best throughput at every length (paper: ~20% over 8B at \
         short inputs, ~15% over 4B at long); Qwen3-0.6B trails the leader (paper: \
         25-35%); throughput declines as draft-token counts grow past the sweet spot.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn best_of(row: &[(String, f64)]) -> &str {
        row.iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(n, _)| n.as_str())
            .expect("non-empty")
    }

    #[test]
    fn qwen17b_best_at_every_length() {
        for (len, row) in by_input_length(true) {
            assert_eq!(best_of(&row), "Qwen3-1.7B", "len {len}: {row:?}");
        }
    }

    #[test]
    fn qwen06b_lags_leader() {
        let rows = by_input_length(true);
        for (_, row) in rows {
            let best = row.iter().map(|r| r.1).fold(0.0, f64::max);
            let small = row.iter().find(|r| r.0 == "Qwen3-0.6B").expect("present").1;
            assert!(small < best * 0.92, "0.6B {small} vs best {best}");
        }
    }

    #[test]
    fn throughput_declines_with_input_length() {
        let rows = by_input_length(true);
        let first: f64 = rows
            .first()
            .expect("rows")
            .1
            .iter()
            .find(|r| r.0 == "Qwen3-1.7B")
            .expect("present")
            .1;
        let last: f64 = rows
            .last()
            .expect("rows")
            .1
            .iter()
            .find(|r| r.0 == "Qwen3-1.7B")
            .expect("present")
            .1;
        // Eq.2 counts input tokens, so raw throughput can rise with input;
        // decode speed must fall. Compare against per-output rate instead:
        // e2e grows superlinearly => tok/s per (in+out) falls.
        let norm_first = first / (128.0 + OUT_LEN as f64);
        let norm_last = last / (2048.0 + OUT_LEN as f64);
        assert!(norm_last < norm_first);
    }

    #[test]
    fn throughput_declines_with_gamma_past_sweet_spot() {
        let rows = by_gamma(true);
        let at = |g: usize| -> f64 {
            rows.iter()
                .find(|r| r.0 == g)
                .expect("gamma present")
                .1
                .iter()
                .find(|r| r.0 == "Qwen3-1.7B")
                .expect("present")
                .1
        };
        assert!(at(9) < at(3), "gamma 3: {}, gamma 9: {}", at(3), at(9));
    }

    #[test]
    fn good_draft_beats_vanilla() {
        let vanilla = target()
            .run(BATCH, 1024, OUT_LEN, &mut moe_trace::Tracer::disabled(), 0)
            .unwrap()
            .throughput_tok_s;
        let rows = by_gamma(true);
        let spec = rows
            .iter()
            .find(|r| r.0 == 3)
            .unwrap()
            .1
            .iter()
            .find(|r| r.0 == "Qwen3-1.7B")
            .unwrap()
            .1;
        assert!(spec > vanilla, "spec {spec} vs vanilla {vanilla}");
    }
}
