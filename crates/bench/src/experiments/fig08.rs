//! Figure 8: throughput vs number of experts (one panel per FFN
//! dimension), Mixtral-8x7B skeleton, batch 16, in/out 2048, 4 H100s.

use moe_model::variants::{ACTIVE_COUNTS, EXPERT_COUNTS, FFN_DIMS};

use super::sweep59::{at, run_grid, GridResult};
use crate::experiment::{ExpCtx, Experiment};
use crate::report::{tput_cell, ExperimentReport, Table};

/// Build the report (panels: FFN dim; rows: expert count; columns: TopK).
/// Registry handle.
pub struct Fig08;

impl Experiment for Fig08 {
    fn id(&self) -> &'static str {
        "fig8"
    }
    fn title(&self) -> &'static str {
        "Figure 8: Throughput vs #Experts (batch 16, in/out 2048, 4xH100)"
    }
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport {
        build(ctx.fast)
    }
}

fn build(fast: bool) -> ExperimentReport {
    let grid = run_grid(fast);
    let mut report = ExperimentReport::new(Fig08.id(), Fig08.title());
    for &ffn in &FFN_DIMS {
        if !grid.iter().any(|g| g.ffn_dim == ffn) {
            continue;
        }
        report.table(panel(&grid, ffn));
    }
    report.note(
        "At small FFN dimensions, growing the expert pool 8 -> 64 maintains throughput \
         (the extra experts mostly add capacity, not per-token work); at large FFN \
         dimensions the additional weight traffic and memory pressure dominate, ending in \
         OOM.",
    );
    report
}

fn panel(grid: &[GridResult], ffn: usize) -> Table {
    let mut cols = vec!["#Experts".to_string()];
    cols.extend(ACTIVE_COUNTS.iter().map(|k| format!("TopK={k}")));
    let mut t = Table::new(
        format!("FFN {ffn} — throughput (tok/s)"),
        &cols.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for &e in &EXPERT_COUNTS {
        if !grid.iter().any(|g| g.ffn_dim == ffn && g.num_experts == e) {
            continue;
        }
        let mut row = vec![e.to_string()];
        for &k in &ACTIVE_COUNTS {
            if grid.iter().any(|g| g.top_k == k) {
                row.push(tput_cell(at(grid, ffn, e, k)));
            } else {
                row.push("-".into());
            }
        }
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_by_ffn_dim() {
        let r = build(true);
        assert_eq!(r.tables.len(), 2);
        assert!(r.tables[0].name.contains("FFN 1792"));
    }

    #[test]
    fn more_experts_hurt_less_at_small_ffn() {
        let grid = run_grid(true);
        let small_ratio = at(&grid, 1792, 64, 1).unwrap() / at(&grid, 1792, 8, 1).unwrap();
        // At 14336 the 64-expert point OOMs entirely.
        assert!(at(&grid, 14_336, 64, 1).is_none());
        assert!(small_ratio > 0.5, "{small_ratio}");
    }
}
