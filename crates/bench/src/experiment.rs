//! The [`Experiment`] trait and the static registry driving the CLI.
//!
//! Every paper table/figure (and extension study) is one unit struct
//! implementing [`Experiment`]; [`REGISTRY`] lists them in paper order
//! and is the single source of truth for ids, titles and ordering.
//! [`run_one`] wraps any experiment run in a root span on
//! [`moe_trace::BENCH_TRACK`]; [`run_all`] executes the whole registry
//! concurrently on the `moe-par` work-stealing pool while keeping
//! reports *and* the composed trace byte-identical for any worker count
//! (each experiment records into a private child tracer, absorbed into
//! the caller's tracer in registry order).

use moe_trace::{Category, MemorySink, Tracer, BENCH_TRACK};

use crate::experiments::{
    ablations, cap, cluster, ctrl, extensions, fig01, fig03, fig04, fig05, fig06, fig07, fig08,
    fig09, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, fig18, mem, plan, scale, table1,
};
use crate::report::ExperimentReport;

/// Context handed to every [`Experiment::run`].
pub struct ExpCtx<'t> {
    /// Shrink grids for tests and smoke runs without changing the
    /// mechanisms exercised.
    pub fast: bool,
    /// Records the experiment's simulated work (often disabled).
    pub tracer: &'t mut Tracer,
    /// Seed derived from the experiment id via [`moe_par::derive_seed`].
    /// Experiments whose grids are fully enumerated ignore it; stochastic
    /// studies may fold it into their workload seeds. Deterministic per
    /// id, independent of registry position or worker count.
    pub seed: u64,
}

/// One registered experiment (a paper table/figure or extension study).
pub trait Experiment: Sync {
    /// Stable CLI id (`fig5`, `ext-plan`, ...).
    fn id(&self) -> &'static str;
    /// Human-readable report title.
    fn title(&self) -> &'static str;
    /// Build the report, recording simulated work into `ctx.tracer`.
    fn run(&self, ctx: &mut ExpCtx<'_>) -> ExperimentReport;
}

/// Every experiment, in paper order (the `moe-bench list`/`all` order).
pub static REGISTRY: &[&dyn Experiment] = &[
    &table1::Table1,
    &fig01::Fig01,
    &fig03::Fig03,
    &fig04::Fig04,
    &fig05::Fig05,
    &fig06::Fig06,
    &fig07::Fig07,
    &fig08::Fig08,
    &fig09::Fig09,
    &fig10::Fig10,
    &fig11::Fig11,
    &fig12::Fig12,
    &fig13::Fig13,
    &fig14::Fig14,
    &fig15::Fig15,
    &fig16::Fig16,
    &fig17::Fig17,
    &fig18::Fig18,
    &ablations::Ablations,
    &extensions::ExtPlacement,
    &extensions::ExtMultinode,
    &extensions::ExtQps,
    &cluster::ExtCluster,
    &plan::ExtPlan,
    &scale::ExtScale,
    &ctrl::ExtCtrl,
    &mem::ExtMem,
    &cap::ExtCap,
];

/// Look up a registered experiment by id.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().find(|e| e.id() == id).copied()
}

/// Master seed the per-experiment [`ExpCtx::seed`] values derive from.
const BENCH_SEED: u64 = 0xB33C;

fn id_seed(id: &str) -> u64 {
    let label = id
        .bytes()
        .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64));
    moe_par::derive_seed(BENCH_SEED, label)
}

/// Run one experiment, wrapping everything it recorded in a root span on
/// [`BENCH_TRACK`] so a multi-experiment trace reads as a tiled timeline
/// of experiment blocks. Experiments that record nothing (untraced
/// tables) add no span. With a disabled tracer this is a plain
/// [`Experiment::run`] call.
pub fn run_one(exp: &dyn Experiment, fast: bool, tracer: &mut Tracer) -> ExperimentReport {
    let start_global_s = tracer.base_s();
    let seed = id_seed(exp.id());
    let report = exp.run(&mut ExpCtx { fast, tracer, seed });
    if tracer.is_enabled() {
        let dur_s = tracer.base_s() - start_global_s;
        if dur_s > 0.0 {
            tracer.name_track(BENCH_TRACK, "bench");
            // Emit in local time relative to the *current* base: the root
            // span reaches back over everything the experiment recorded.
            tracer.span_with(
                BENCH_TRACK,
                Category::Bench,
                exp.id(),
                start_global_s - tracer.base_s(),
                dur_s,
                vec![("fast", i64::from(fast).into())],
            );
        }
    }
    report
}

/// Run every registered experiment concurrently on the work-stealing
/// pool. Each experiment records into its own child tracer; children are
/// absorbed into `tracer` in registry order, so reports, stdout and the
/// composed trace are byte-identical for any `MOE_THREADS` value.
pub fn run_all(fast: bool, tracer: &mut Tracer) -> Vec<ExperimentReport> {
    let enabled = tracer.is_enabled();
    let results = moe_par::map_collect(REGISTRY.len(), |i| {
        let mut child = if enabled {
            Tracer::new(Box::new(MemorySink::new()))
        } else {
            Tracer::disabled()
        };
        let report = run_one(REGISTRY[i], fast, &mut child);
        (report, child)
    });
    let mut reports = Vec::with_capacity(results.len());
    for (report, child) in results {
        tracer.absorb(child);
        reports.push(report);
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_match_titles() {
        let mut seen = std::collections::BTreeSet::new();
        for e in REGISTRY {
            assert!(seen.insert(e.id()), "duplicate id {}", e.id());
            assert!(!e.title().is_empty(), "{} lacks a title", e.id());
        }
        assert_eq!(REGISTRY.len(), 28);
    }

    #[test]
    fn find_resolves_every_registered_id() {
        for e in REGISTRY {
            let found = find(e.id()).expect("registered");
            assert_eq!(found.id(), e.id());
        }
        assert!(find("no-such-experiment").is_none());
    }

    #[test]
    fn id_seeds_are_distinct_per_experiment() {
        let mut seeds = std::collections::BTreeSet::new();
        for e in REGISTRY {
            assert!(seeds.insert(id_seed(e.id())), "seed collision {}", e.id());
        }
    }

    #[test]
    fn report_id_matches_registry_id() {
        // The cheap structural experiments prove the wiring without
        // running the heavy sweeps.
        for id in ["table1", "fig1"] {
            let exp = find(id).expect("registered");
            let report = run_one(exp, true, &mut Tracer::disabled());
            assert_eq!(report.id, exp.id());
            assert_eq!(report.title, exp.title());
        }
    }
}
