//! End-to-end pricing checks: trace capture → residency derivation →
//! analytic cost model. The load-bearing guarantee is the identity: an
//! oracle predictor at an unconstrained HBM budget must reproduce the
//! pre-`moe-mem` prices bit for bit.

use moe_engine::generate::GenerateParams;
use moe_engine::trace::{capture_trace, TraceArtifact};
use moe_gpusim::device::Interconnect;
use moe_gpusim::{Cluster, EngineOptions, ParallelPlan, PerfModel};
use moe_mem::{derive_residency, PredictorQuality};
use moe_model::registry::{mixtral_8x7b, tiny_test_model};
use moe_trace::Tracer;

fn artifact() -> TraceArtifact {
    capture_trace(
        "tiny-8x2",
        tiny_test_model(8, 2),
        33,
        &[1, 2, 3, 4, 5, 6, 7, 8],
        GenerateParams::greedy(16),
    )
}

fn priced_itl(opts: EngineOptions) -> f64 {
    PerfModel::new(mixtral_8x7b(), Cluster::h100_node(2), opts)
        .unwrap()
        .run(8, 1024, 1024, &mut Tracer::disabled(), 0)
        .unwrap()
        .itl_s
}

fn baseline_opts() -> EngineOptions {
    EngineOptions::default().with_plan(ParallelPlan::tensor(2))
}

#[test]
fn oracle_at_infinite_budget_reproduces_baseline_prices_bitwise() {
    let derived = derive_residency(
        &artifact(),
        1.0,
        PredictorQuality::Oracle,
        Interconnect::pcie_gen5(),
    );
    assert!(derived.residency.is_all_resident());

    let baseline = PerfModel::new(mixtral_8x7b(), Cluster::h100_node(2), baseline_opts()).unwrap();
    let derived_model = PerfModel::new(
        mixtral_8x7b(),
        Cluster::h100_node(2),
        baseline_opts().with_residency(derived.residency),
    )
    .unwrap();
    for (batch, input, output) in [
        (1usize, 128usize, 128usize),
        (8, 1024, 1024),
        (64, 2048, 256),
    ] {
        let a = baseline
            .run(batch, input, output, &mut Tracer::disabled(), 0)
            .unwrap();
        let b = derived_model
            .run(batch, input, output, &mut Tracer::disabled(), 0)
            .unwrap();
        assert_eq!(a, b, "batch {batch} input {input} output {output}");
    }
}

#[test]
fn shrinking_budget_degrades_itl_monotonically() {
    let a = artifact();
    let itl_at = |frac: f64| {
        let d = derive_residency(
            &a,
            frac,
            PredictorQuality::Frequency,
            Interconnect::pcie_gen5(),
        );
        priced_itl(baseline_opts().with_residency(d.residency))
    };
    let full = itl_at(1.0);
    let tight = itl_at(0.5);
    let tighter = itl_at(0.25);
    assert!(tight >= full, "{tight} vs {full}");
    assert!(tighter >= tight, "{tighter} vs {tight}");
    assert!(tighter > full * 1.01, "budget pressure must show up in ITL");
}

#[test]
fn predictor_quality_ladder_orders_the_price() {
    let a = artifact();
    let itl_at = |q: PredictorQuality| {
        let d = derive_residency(&a, 0.25, q, Interconnect::pcie_gen5());
        priced_itl(baseline_opts().with_residency(d.residency))
    };
    let oracle = itl_at(PredictorQuality::Oracle);
    let freq = itl_at(PredictorQuality::Frequency);
    let uniform = itl_at(PredictorQuality::Uniform);
    assert!(oracle <= freq + 1e-12, "{oracle} vs {freq}");
    assert!(freq <= uniform + 1e-12, "{freq} vs {uniform}");
    assert!(uniform > oracle, "the ladder must separate somewhere");
}
