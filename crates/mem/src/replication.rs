//! Hot-expert replication studies over real activation statistics.
//!
//! `moe_gpusim::placement` provides the mechanisms (LPT packing,
//! load-aware replication); this module closes the loop with *measured*
//! loads: it feeds each layer's expert-activation counts from a real
//! `moe-engine` run into the placement algorithms and reports how much of
//! the router-skew imbalance replication recovers over the best
//! single-copy packing.

use moe_engine::stats::ActivationStats;
use moe_gpusim::placement::{
    contiguous_placement, lpt_placement, placement_imbalance, replicated_imbalance,
    replicated_placement,
};

/// Per-layer imbalance under three placement policies.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationStudy {
    /// Layer index in the source stats.
    pub layer: usize,
    /// Static contiguous sharding (ignores load).
    pub contiguous: f64,
    /// Longest-processing-time packing, one copy per expert.
    pub lpt: f64,
    /// Load-aware replication up to the given factor.
    pub replicated: f64,
}

/// Run the placement policies over every routed layer of `stats`. Layers
/// with no recorded activations (dense layers) are skipped.
pub fn replication_study(
    stats: &ActivationStats,
    devices: usize,
    factor: usize,
) -> Vec<ReplicationStudy> {
    (0..stats.num_layers())
        .filter(|&l| stats.layer(l).iter().any(|&c| c > 0))
        .map(|layer| {
            let loads = stats.layer(layer);
            let contiguous =
                placement_imbalance(&contiguous_placement(loads.len(), devices), loads);
            let lpt = placement_imbalance(&lpt_placement(loads, devices), loads);
            let replicated =
                replicated_imbalance(&replicated_placement(loads, devices, factor), loads);
            ReplicationStudy {
                layer,
                contiguous,
                lpt,
                replicated,
            }
        })
        .collect()
}

/// Mean imbalance across layers for one policy column of a study.
pub fn mean_imbalance(study: &[ReplicationStudy], pick: impl Fn(&ReplicationStudy) -> f64) -> f64 {
    if study.is_empty() {
        return 1.0;
    }
    study.iter().map(pick).sum::<f64>() / study.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_engine::generate::GenerateParams;
    use moe_engine::trace::capture_trace;
    use moe_model::registry::tiny_test_model;

    /// Real stats from a down-scaled engine run — the cross-check the
    /// replication policy is specified against.
    fn engine_stats() -> ActivationStats {
        capture_trace(
            "tiny-16x4",
            tiny_test_model(16, 4),
            13,
            &[1, 2, 3, 4, 5, 6, 7],
            GenerateParams::greedy(12),
        )
        .stats
    }

    #[test]
    fn replication_never_loses_to_lpt_on_real_loads() {
        let stats = engine_stats();
        for factor in [1usize, 2, 4] {
            for devices in [2usize, 4] {
                for row in replication_study(&stats, devices, factor) {
                    assert!(
                        row.replicated <= row.lpt + 1e-9,
                        "layer {} devices {devices} factor {factor}: {} > {}",
                        row.layer,
                        row.replicated,
                        row.lpt
                    );
                }
            }
        }
    }

    #[test]
    fn factor_one_study_equals_lpt_exactly() {
        let stats = engine_stats();
        for row in replication_study(&stats, 4, 1) {
            assert!(
                (row.replicated - row.lpt).abs() < 1e-12,
                "layer {}: {} vs {}",
                row.layer,
                row.replicated,
                row.lpt
            );
        }
    }

    #[test]
    fn replication_recovers_a_synthetic_hot_expert() {
        // One expert takes half the traffic: LPT cannot balance it, a
        // 4-way replica can.
        let mut stats = ActivationStats::new(1, 8);
        for _ in 0..280 {
            stats.record(0, &[0]);
        }
        for e in 1..8 {
            for _ in 0..40 {
                stats.record(0, &[e]);
            }
        }
        let study = replication_study(&stats, 4, 4);
        assert_eq!(study.len(), 1);
        let row = &study[0];
        assert!(row.lpt > 1.5, "hot expert must swamp LPT: {}", row.lpt);
        assert!(
            row.replicated < 1.2,
            "replication must split the hot expert: {}",
            row.replicated
        );
        assert!(row.contiguous >= row.lpt - 1e-12);
    }

    #[test]
    fn dense_layers_are_skipped() {
        let stats = ActivationStats::new(3, 4);
        assert!(replication_study(&stats, 2, 2).is_empty());
        assert!((mean_imbalance(&[], |r| r.lpt) - 1.0).abs() < 1e-12);
    }
}
