//! Deriving an [`ExpertResidency`] from a real routing trace.
//!
//! Given an HBM budget (a fraction of routed-expert weight bytes) this
//! module decides *which* experts stay resident — hottest first, per
//! layer, by measured activation counts — and then quantifies the two
//! probabilities the cost model needs:
//!
//! * `residency_hit`: the load-weighted chance a needed expert is already
//!   in HBM. Hot-first placement under skewed routing makes this exceed
//!   the byte fraction (the whole point of residency management).
//! * `predictor_hit`: the chance a *non-resident* needed expert was
//!   prefetched one layer ahead, measured by replaying the trace through
//!   the trained [`TransitionTable`] (or fixed analytically for the
//!   oracle / uniform brackets).
//!
//! At `hbm_frac >= 1.0` the derivation returns
//! [`ExpertResidency::all_resident`] exactly, so an unconstrained budget
//! reproduces the pre-`moe-mem` prices bit for bit.

use moe_engine::stats::ActivationStats;
use moe_engine::trace::TraceArtifact;
use moe_gpusim::convert::f64_to_count;
use moe_gpusim::device::Interconnect;
use moe_gpusim::residency::ExpertResidency;

use crate::predictor::{replay_hit_rate, PredictorQuality, TransitionTable};

/// Per-layer hot-first resident masks: keep the `floor(frac * E)` most
/// activated experts of each layer (ties toward the lower index). A
/// fraction under one expert's worth keeps nothing; `frac >= 1.0` keeps
/// everything.
pub fn hot_expert_masks(stats: &ActivationStats, frac: f64) -> Vec<Vec<bool>> {
    let e = stats.num_experts();
    let keep = f64_to_count(frac.clamp(0.0, 1.0) * e as f64).min(e);
    (0..stats.num_layers())
        .map(|l| {
            let counts = stats.layer(l);
            let mut order: Vec<usize> = (0..e).collect();
            order.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));
            let mut mask = vec![false; e];
            for &hot in &order[..keep] {
                mask[hot] = true;
            }
            mask
        })
        .collect()
}

/// Load-weighted probability that a needed expert is resident: the share
/// of all recorded activations landing on resident experts. Layers with
/// no routed tokens contribute nothing; a traceless model falls back to
/// the byte fraction itself (uniform routing assumption).
pub fn residency_hit_rate(stats: &ActivationStats, masks: &[Vec<bool>], frac: f64) -> f64 {
    let mut resident = 0u64;
    let mut total = 0u64;
    for (l, mask) in masks.iter().enumerate() {
        for (e, &m) in mask.iter().enumerate() {
            let c = stats.count(l, e);
            total += c;
            if m {
                resident += c;
            }
        }
    }
    if total == 0 {
        frac.clamp(0.0, 1.0)
    } else {
        resident as f64 / total as f64
    }
}

/// A derived residency with its intermediate measurements, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedResidency {
    /// The narrow interface the cost model consumes.
    pub residency: ExpertResidency,
    /// Which experts stay in HBM, per layer.
    pub resident: Vec<Vec<bool>>,
    /// Predictor tier the hit rate was derived under.
    pub quality: PredictorQuality,
    /// Experts prefetched per token per layer (the prediction width).
    pub prefetch_width: usize,
}

/// Derive the residency for a trace at an HBM budget and predictor tier.
///
/// `hbm_frac >= 1.0` short-circuits to [`ExpertResidency::all_resident`]
/// (with `link` applied): the unconstrained budget is the identity regime
/// and must price exactly like having no residency model at all.
pub fn derive_residency(
    artifact: &TraceArtifact,
    hbm_frac: f64,
    quality: PredictorQuality,
    link: Interconnect,
) -> DerivedResidency {
    let e = artifact.trace.num_experts;
    let width = artifact.trace.top_k.max(1);
    if hbm_frac >= 1.0 {
        return DerivedResidency {
            residency: ExpertResidency::all_resident().with_link(link),
            resident: vec![vec![true; e]; artifact.trace.num_layers],
            quality,
            prefetch_width: width,
        };
    }

    let masks = hot_expert_masks(&artifact.stats, hbm_frac);
    let resident_count = masks.first().map(|m| m.iter().filter(|&&x| x).count());
    let resident_frac = match resident_count {
        Some(n) if e > 0 => n as f64 / e as f64,
        _ => hbm_frac,
    };
    let residency_hit = residency_hit_rate(&artifact.stats, &masks, hbm_frac);

    let predictor_hit = match quality {
        PredictorQuality::Oracle => 1.0,
        PredictorQuality::Uniform => {
            if e == 0 {
                0.0
            } else {
                (width as f64 / e as f64).min(1.0)
            }
        }
        PredictorQuality::Frequency => {
            let table = TransitionTable::from_trace(&artifact.trace);
            replay_hit_rate(&artifact.trace, &table, width, |layer, expert| {
                !masks
                    .get(layer)
                    .and_then(|m| m.get(expert as usize))
                    .copied()
                    .unwrap_or(false)
            })
        }
    };

    DerivedResidency {
        residency: ExpertResidency::offloaded(resident_frac, residency_hit, predictor_hit)
            .with_link(link),
        resident: masks,
        quality,
        prefetch_width: width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_engine::generate::GenerateParams;
    use moe_engine::trace::capture_trace;
    use moe_model::registry::tiny_test_model;

    fn artifact() -> TraceArtifact {
        capture_trace(
            "tiny-8x2",
            tiny_test_model(8, 2),
            21,
            &[1, 2, 3, 4, 5, 6],
            GenerateParams::greedy(10),
        )
    }

    #[test]
    fn unconstrained_budget_is_exactly_all_resident() {
        let a = artifact();
        for quality in [
            PredictorQuality::Oracle,
            PredictorQuality::Frequency,
            PredictorQuality::Uniform,
        ] {
            let d = derive_residency(&a, 1.0, quality, Interconnect::pcie_gen5());
            assert_eq!(d.residency, ExpertResidency::all_resident());
            assert!(d.resident.iter().all(|m| m.iter().all(|&x| x)));
        }
    }

    #[test]
    fn hot_first_residency_beats_the_byte_fraction() {
        // Real routing is skewed: keeping the hottest half of the experts
        // covers more than half of the activations.
        let a = artifact();
        let d = derive_residency(
            &a,
            0.5,
            PredictorQuality::Frequency,
            Interconnect::pcie_gen5(),
        );
        assert!((d.residency.resident_frac - 0.5).abs() < 1e-12);
        assert!(
            d.residency.residency_hit >= d.residency.resident_frac,
            "hot-first hit {} under byte fraction {}",
            d.residency.residency_hit,
            d.residency.resident_frac
        );
    }

    #[test]
    fn quality_tiers_order_the_predictor_hit() {
        let a = artifact();
        let at = |q| {
            derive_residency(&a, 0.25, q, Interconnect::pcie_gen5())
                .residency
                .predictor_hit
        };
        let oracle = at(PredictorQuality::Oracle);
        let freq = at(PredictorQuality::Frequency);
        let uniform = at(PredictorQuality::Uniform);
        assert!((oracle - 1.0).abs() < 1e-12);
        assert!(freq <= oracle + 1e-12);
        assert!(
            freq >= uniform - 1e-12,
            "trained predictor {freq} under uniform floor {uniform}"
        );
    }

    #[test]
    fn masks_keep_the_hottest_experts() {
        let mut stats = ActivationStats::new(1, 4);
        // Expert 2 hottest, then 0, then 3, then 1.
        for _ in 0..5 {
            stats.record(0, &[2]);
        }
        for _ in 0..3 {
            stats.record(0, &[0]);
        }
        stats.record(0, &[3]);
        let masks = hot_expert_masks(&stats, 0.5);
        assert_eq!(masks[0], vec![true, false, true, false]);
        let hit = residency_hit_rate(&stats, &masks, 0.5);
        assert!((hit - 8.0 / 9.0).abs() < 1e-12, "{hit}");
    }

    #[test]
    fn tiny_budget_keeps_nothing_and_traceless_falls_back() {
        let stats = ActivationStats::new(2, 8);
        let masks = hot_expert_masks(&stats, 0.05);
        assert!(masks.iter().all(|m| m.iter().all(|&x| !x)));
        let hit = residency_hit_rate(&stats, &masks, 0.4);
        assert!((hit - 0.4).abs() < 1e-12, "traceless fallback: {hit}");
    }
}
