//! Discrete-event validation of the prefetch-overlap stall model.
//!
//! The analytic cost model (`moe_gpusim::perfmodel`) prices a layer's
//! expert-load stall as `max(0, load(predicted) - window) + load(missed)`:
//! predicted experts stream over the offload link *during* the previous
//! layer's compute window and stall only by the overshoot, while missed
//! experts are synchronous, fully exposed loads. This module replays the
//! same schedule on an explicit event timeline with the offload link as a
//! serializing [`Resource`], which both validates the closed form (a free
//! link reproduces it exactly) and prices what the closed form cannot: a
//! congested link where consecutive prefetches queue behind each other.

use moe_gpusim::des::Resource;
use moe_gpusim::device::Interconnect;

/// One layer's demand on the prefetch pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerDemand {
    /// Compute time of the layer — the overlap window it offers to the
    /// *next* layer's prefetch.
    pub compute_s: f64,
    /// Bytes the predictor wants streamed in before this layer starts.
    pub prefetch_bytes: f64,
    /// Bytes the predictor missed: loaded synchronously at layer entry.
    pub miss_bytes: f64,
}

impl LayerDemand {
    /// A layer with no offload traffic (all experts resident).
    pub fn resident(compute_s: f64) -> Self {
        Self {
            compute_s,
            prefetch_bytes: 0.0,
            miss_bytes: 0.0,
        }
    }
}

/// Timed outcome of a prefetch schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchOutcome {
    /// End-to-end time including stalls.
    pub total_s: f64,
    /// Time spent waiting on the offload link (prefetch overshoot plus
    /// synchronous miss loads).
    pub stall_s: f64,
}

fn link_time(link: Interconnect, bytes: f64) -> f64 {
    if bytes > 0.0 {
        link.latency + bytes / link.bandwidth
    } else {
        0.0
    }
}

/// Closed-form stall for one layer: prefetch overshoot past the previous
/// layer's compute window, plus the fully exposed miss load. This is the
/// same arithmetic the perf model's `expert_load_stall` applies.
pub fn analytic_stall(link: Interconnect, window_s: f64, demand: LayerDemand) -> f64 {
    let prefetch = if demand.prefetch_bytes > 0.0 {
        (link_time(link, demand.prefetch_bytes) - window_s).max(0.0)
    } else {
        0.0
    };
    prefetch + link_time(link, demand.miss_bytes)
}

/// Replay the layer sequence on an event timeline with the offload link
/// as a serializing resource. Layer `l + 1`'s prefetch is issued when
/// layer `l` starts computing; layer 0 has no window, so its prefetch is
/// fully exposed. Miss loads are synchronous and also occupy the link.
pub fn simulate_prefetch(layers: &[LayerDemand], link: Interconnect) -> PrefetchOutcome {
    let mut link_res = Resource::new();
    let mut t = 0.0f64;
    let mut stall = 0.0f64;

    // Layer 0's prefetch has no preceding compute to hide under.
    let mut prefetch_done = match layers.first() {
        Some(d) if d.prefetch_bytes > 0.0 => {
            let (_, end) = link_res.acquire(t, link_time(link, d.prefetch_bytes));
            end
        }
        _ => t,
    };

    for (l, d) in layers.iter().enumerate() {
        // Wait for this layer's prefetch to land.
        if prefetch_done > t {
            stall += prefetch_done - t;
            t = prefetch_done;
        }
        // Synchronous miss loads: fully exposed, and they hold the link.
        if d.miss_bytes > 0.0 {
            let (_, end) = link_res.acquire(t, link_time(link, d.miss_bytes));
            stall += end - t;
            t = end;
        }
        // Issue the next layer's prefetch to overlap this compute.
        prefetch_done = match layers.get(l + 1) {
            Some(next) if next.prefetch_bytes > 0.0 => {
                let (_, end) = link_res.acquire(t, link_time(link, next.prefetch_bytes));
                end
            }
            _ => t,
        };
        t += d.compute_s;
    }

    PrefetchOutcome {
        total_s: t,
        stall_s: stall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Interconnect {
        Interconnect::pcie_gen5()
    }

    #[test]
    fn resident_layers_price_exactly_the_compute_sum() {
        let layers: Vec<LayerDemand> = [0.5, 0.25, 0.125]
            .iter()
            .map(|&c| LayerDemand::resident(c))
            .collect();
        let out = simulate_prefetch(&layers, link());
        assert_eq!(out.stall_s, 0.0, "no offload traffic must stall 0.0");
        assert_eq!(out.total_s, 0.5 + 0.25 + 0.125);
    }

    #[test]
    fn fully_hidden_prefetch_adds_no_stall() {
        // Tiny transfers under a huge compute window: total == compute.
        let layers = vec![
            LayerDemand {
                compute_s: 1.0,
                prefetch_bytes: 0.0,
                miss_bytes: 0.0,
            };
            4
        ];
        let mut with_prefetch = layers.clone();
        for d in with_prefetch.iter_mut().skip(1) {
            d.prefetch_bytes = 1e3; // ~18 ns on PCIe Gen5 + 8 us latency
        }
        let out = simulate_prefetch(&with_prefetch, link());
        assert!(out.stall_s.abs() < 1e-12, "{}", out.stall_s);
        assert!((out.total_s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn uncontended_stall_matches_the_closed_form() {
        // Seeded sweep: windows long enough that the link never queues, so
        // the DES must reproduce the analytic per-layer stalls exactly.
        let mut rng = moe_tensor::rng::rng_from_seed(0x3e_a0);
        for case in 0..32 {
            let n = 2 + rng.next_below(5);
            let layers: Vec<LayerDemand> = (0..n)
                .map(|_| LayerDemand {
                    compute_s: 1.0 + rng.next_f64(),
                    prefetch_bytes: rng.next_f64() * 20e9, // up to ~0.36 s on PCIe
                    miss_bytes: rng.next_f64() * 5e9,
                })
                .collect();
            let out = simulate_prefetch(&layers, link());
            let mut expect = analytic_stall(
                link(),
                0.0,
                LayerDemand {
                    compute_s: 0.0,
                    prefetch_bytes: layers[0].prefetch_bytes,
                    miss_bytes: 0.0,
                },
            );
            for l in 0..layers.len() {
                let window = if l == 0 { 0.0 } else { layers[l - 1].compute_s };
                let miss_only = LayerDemand {
                    miss_bytes: layers[l].miss_bytes,
                    prefetch_bytes: if l == 0 {
                        0.0
                    } else {
                        layers[l].prefetch_bytes
                    },
                    compute_s: 0.0,
                };
                expect += analytic_stall(link(), window, miss_only);
            }
            // Windows (>= 1 s) dwarf the transfers (<= ~0.46 s), so the
            // link never queues and the DES must equal the closed form.
            assert!(
                (out.stall_s - expect).abs() < 1e-9,
                "case {case}: DES {} vs analytic {expect}",
                out.stall_s
            );
            let compute: f64 = layers.iter().map(|d| d.compute_s).sum();
            assert!((out.total_s - compute - out.stall_s).abs() < 1e-9);
        }
    }

    #[test]
    fn overshoot_is_exactly_load_minus_window() {
        // One prefetch larger than its window, nothing else on the link:
        // stall = load - window, to the bit.
        let bytes = 100e9; // ~1.8 s on PCIe Gen5
        let window = 0.25;
        let layers = [
            LayerDemand::resident(window),
            LayerDemand {
                compute_s: 0.1,
                prefetch_bytes: bytes,
                miss_bytes: 0.0,
            },
        ];
        let out = simulate_prefetch(&layers, link());
        let expect = link_time(link(), bytes) - window;
        assert!((out.stall_s - expect).abs() < 1e-12, "{}", out.stall_s);
    }

    #[test]
    fn misses_are_fully_exposed() {
        let bytes = 10e9;
        let layers = [LayerDemand {
            compute_s: 1.0,
            prefetch_bytes: 0.0,
            miss_bytes: bytes,
        }];
        let out = simulate_prefetch(&layers, link());
        let expect = link_time(link(), bytes);
        assert!((out.stall_s - expect).abs() < 1e-12);
        assert!((out.total_s - 1.0 - expect).abs() < 1e-12);
    }

    #[test]
    fn link_contention_only_ever_hurts() {
        // Doubling every transfer on the shared link can never reduce the
        // stall below the independent-transfer analytic bound.
        let mut rng = moe_tensor::rng::rng_from_seed(0x3e_a1);
        for _ in 0..32 {
            let n = 2 + rng.next_below(6);
            let layers: Vec<LayerDemand> = (0..n)
                .map(|_| LayerDemand {
                    compute_s: 0.01 + rng.next_f64() * 0.05,
                    prefetch_bytes: rng.next_f64() * 40e9,
                    miss_bytes: rng.next_f64() * 10e9,
                })
                .collect();
            let out = simulate_prefetch(&layers, link());
            let mut independent = 0.0;
            for l in 0..layers.len() {
                let window = if l == 0 { 0.0 } else { layers[l - 1].compute_s };
                independent += analytic_stall(link(), window, layers[l]);
            }
            // First layer's prefetch has no window in the DES either; the
            // analytic sum above treats it the same (window 0).
            assert!(out.stall_s >= independent - 1e-9);
        }
    }
}
