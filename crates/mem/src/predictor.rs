//! Lookahead expert predictors trained on real routing traces.
//!
//! A prefetcher is only as good as its guess about which experts the
//! *next* layer will route to. The trainable signal is the layer-to-layer
//! transition structure of real runs: conditioned on a token activating
//! expert `a` at layer `l`, some experts at layer `l + 1` are far more
//! likely than chance. [`TransitionTable`] accumulates those transition
//! counts from a [`RoutingTrace`]; [`PredictorQuality`] is the knob the
//! `ext-mem` experiment sweeps, bracketing the trained predictor between
//! a perfect oracle and a blind uniform guess.

use moe_engine::trace::RoutingTrace;
use moe_json::{FromJson, ToJson};

/// Prefetch-predictor quality tiers, best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, ToJson, FromJson)]
pub enum PredictorQuality {
    /// Knows the future: every non-resident expert is prefetched in time.
    /// The upper bound a learned predictor converges to.
    Oracle,
    /// Predicts the top transitions of a [`TransitionTable`] trained on a
    /// real trace; hit rate is *measured* by replaying that trace.
    Frequency,
    /// Guesses experts uniformly at random — the analytic floor: picking
    /// `n` of `E` experts hits with probability `n / E`.
    Uniform,
}

impl PredictorQuality {
    /// Stable identifier used in report tables and config labels.
    pub fn name(self) -> &'static str {
        match self {
            PredictorQuality::Oracle => "oracle",
            PredictorQuality::Frequency => "frequency",
            PredictorQuality::Uniform => "uniform",
        }
    }
}

/// Per-layer expert transition counts: how often a token routed to expert
/// `from` at layer `l` routes to expert `to` at layer `l + 1`.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct TransitionTable {
    /// Layers in the source trace; transitions exist for `l -> l + 1`.
    pub num_layers: usize,
    /// Router fan-out of the source trace.
    pub num_experts: usize,
    /// `counts[l][from * num_experts + to]` — transition counts from layer
    /// `l` to layer `l + 1`. Empty when either layer routed no tokens.
    pub counts: Vec<Vec<u64>>,
}

impl TransitionTable {
    /// Accumulate transition counts from a recorded trace. Layer pairs
    /// where either side routed no tokens (dense layers) contribute
    /// nothing.
    pub fn from_trace(trace: &RoutingTrace) -> Self {
        let e = trace.num_experts;
        let pairs = trace.num_layers.saturating_sub(1);
        let mut counts = vec![Vec::new(); pairs];
        for (l, slot) in counts.iter_mut().enumerate() {
            let tokens = trace.tokens(l);
            if tokens == 0 || trace.tokens(l + 1) != tokens {
                continue;
            }
            slot.resize(e * e, 0u64);
            for t in 0..tokens {
                for &from in trace.token_experts(l, t) {
                    for &to in trace.token_experts(l + 1, t) {
                        slot[from as usize * e + to as usize] += 1;
                    }
                }
            }
        }
        Self {
            num_layers: trace.num_layers,
            num_experts: e,
            counts,
        }
    }

    /// Transition count `layer -> layer + 1` from expert `from` to `to`.
    pub fn count(&self, layer: usize, from: usize, to: usize) -> u64 {
        self.counts
            .get(layer)
            .and_then(|c| c.get(from * self.num_experts + to))
            .copied()
            .unwrap_or(0)
    }

    /// Total transitions recorded out of `layer`.
    pub fn total(&self, layer: usize) -> u64 {
        self.counts.get(layer).map(|c| c.iter().sum()).unwrap_or(0)
    }

    /// Predict the `n` most likely experts at `layer + 1` for a token that
    /// routed to `from` at `layer`. Scores are summed transition counts;
    /// ties break toward the lower expert index, so the prediction is a
    /// pure function of the table.
    pub fn predict(&self, layer: usize, from: &[u32], n: usize) -> Vec<u32> {
        let e = self.num_experts;
        let mut scores = vec![0u64; e];
        if let Some(c) = self.counts.get(layer) {
            if !c.is_empty() {
                for &f in from {
                    let row = &c[f as usize * e..(f as usize + 1) * e];
                    for (to, &cnt) in row.iter().enumerate() {
                        scores[to] += cnt;
                    }
                }
            }
        }
        let mut order: Vec<usize> = (0..e).collect();
        order.sort_by(|&a, &b| scores[b].cmp(&scores[a]).then(a.cmp(&b)));
        order.truncate(n.min(e));
        order.into_iter().map(|x| x as u32).collect()
    }
}

/// Replay a trace against a trained table and measure the prefetch hit
/// rate: the fraction of *needed* expert activations (per `non_resident`)
/// at layer `l + 1` that appear in the `n`-wide prediction issued from the
/// token's layer-`l` experts. The prefetcher manages the resident set, so
/// it never spends prediction width on experts already in HBM: the
/// `n`-wide prediction is the top `n` *non-resident* candidates of the
/// full transition ranking. Returns `1.0` when nothing was needed — no
/// demand means no misses.
pub fn replay_hit_rate(
    trace: &RoutingTrace,
    table: &TransitionTable,
    n: usize,
    non_resident: impl Fn(usize, u32) -> bool,
) -> f64 {
    let mut needed = 0u64;
    let mut hits = 0u64;
    for l in 0..trace.num_layers.saturating_sub(1) {
        let tokens = trace.tokens(l);
        if tokens == 0 || trace.tokens(l + 1) != tokens {
            continue;
        }
        for t in 0..tokens {
            let ranked = table.predict(l, trace.token_experts(l, t), table.num_experts);
            let predicted: Vec<u32> = ranked
                .into_iter()
                .filter(|&x| non_resident(l + 1, x))
                .take(n)
                .collect();
            for &want in trace.token_experts(l + 1, t) {
                if !non_resident(l + 1, want) {
                    continue;
                }
                needed += 1;
                if predicted.contains(&want) {
                    hits += 1;
                }
            }
        }
    }
    if needed == 0 {
        1.0
    } else {
        hits as f64 / needed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built trace: 2 layers, 4 experts, top-1, where layer-0
    /// expert `e` always transitions to layer-1 expert `(e + 1) % 4`.
    fn shifted_trace(tokens: usize) -> RoutingTrace {
        let mut trace = RoutingTrace::new(2, 4, 1);
        for t in 0..tokens {
            let e = t % 4;
            trace.record(0, &[e]);
            trace.record(1, &[(e + 1) % 4]);
        }
        trace
    }

    #[test]
    fn table_counts_transitions() {
        let table = TransitionTable::from_trace(&shifted_trace(8));
        for e in 0..4usize {
            assert_eq!(table.count(0, e, (e + 1) % 4), 2);
            assert_eq!(table.count(0, e, e), 0);
        }
        assert_eq!(table.total(0), 8);
    }

    #[test]
    fn predict_follows_the_learned_transition() {
        let table = TransitionTable::from_trace(&shifted_trace(8));
        for e in 0..4u32 {
            let p = table.predict(0, &[e], 1);
            assert_eq!(p, vec![(e + 1) % 4]);
        }
    }

    #[test]
    fn predict_ties_break_toward_lower_index() {
        // An empty table scores everything 0: prediction is 0..n.
        let table = TransitionTable::from_trace(&RoutingTrace::new(2, 6, 1));
        assert_eq!(table.predict(0, &[3], 3), vec![0, 1, 2]);
    }

    #[test]
    fn perfectly_learnable_trace_replays_at_full_hit_rate() {
        let trace = shifted_trace(12);
        let table = TransitionTable::from_trace(&trace);
        let rate = replay_hit_rate(&trace, &table, 1, |_, _| true);
        assert!((rate - 1.0).abs() < 1e-12, "{rate}");
    }

    #[test]
    fn narrow_prediction_misses_unlearnable_demand() {
        // Layer-0 expert 0 goes to 1 and 2 alternately; a width-1
        // predictor can catch only the more frequent successor.
        let mut trace = RoutingTrace::new(2, 4, 1);
        for t in 0..9 {
            trace.record(0, &[0]);
            trace.record(1, &[if t % 3 == 0 { 2 } else { 1 }]);
        }
        let table = TransitionTable::from_trace(&trace);
        let rate = replay_hit_rate(&trace, &table, 1, |_, _| true);
        assert!(rate < 1.0 && rate > 0.5, "{rate}");
        // Widening the prediction to 2 recovers everything.
        let wide = replay_hit_rate(&trace, &table, 2, |_, _| true);
        assert!((wide - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_demand_means_no_misses() {
        let trace = shifted_trace(4);
        let table = TransitionTable::from_trace(&trace);
        let rate = replay_hit_rate(&trace, &table, 1, |_, _| false);
        assert!((rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_json_round_trips() {
        let table = TransitionTable::from_trace(&shifted_trace(8));
        let json = moe_json::to_string(&table);
        let back = moe_json::from_str::<TransitionTable>(&json).unwrap();
        assert_eq!(table, back);
    }

    #[test]
    fn quality_names_are_stable() {
        assert_eq!(PredictorQuality::Oracle.name(), "oracle");
        assert_eq!(PredictorQuality::Frequency.name(), "frequency");
        assert_eq!(PredictorQuality::Uniform.name(), "uniform");
    }
}
