//! # moe-mem
//!
//! Expert residency, predictive prefetch, and offload-aware serving for
//! MoE models that do not fit their HBM budget.
//!
//! The paper's models are dominated by routed-expert weights that are
//! *sparsely* activated: per token, only `top_k` of `E` experts per layer
//! touch their weights. That sparsity is the opening this crate exploits —
//! under a constrained HBM budget, keep the hot experts resident, stream
//! the rest from an offload tier (host DRAM over PCIe, NVMe), and hide the
//! streaming under compute with a lookahead predictor trained on real
//! routing traces:
//!
//! * [`predictor`] — layer-transition frequency tables built from
//!   `moe-engine` [`RoutingTrace`](moe_engine::trace::RoutingTrace)
//!   exports, with an oracle → frequency → uniform quality ladder;
//! * [`residency`] — hot-first resident sets per layer and the derivation
//!   of the [`ExpertResidency`](moe_gpusim::ExpertResidency) summary the
//!   analytic cost model prices;
//! * [`prefetch`] — a discrete-event replay of the prefetch schedule that
//!   validates the closed-form overlap stall and prices link contention;
//! * [`replication`] — hot-expert replication across EP ranks, measured
//!   against LPT packing on real activation statistics.
//!
//! Everything is deterministic: traces are seeded, predictors are pure
//! functions of their tables, and ties break by expert index.

#![forbid(unsafe_code)]

pub mod predictor;
pub mod prefetch;
pub mod replication;
pub mod residency;

pub use predictor::{replay_hit_rate, PredictorQuality, TransitionTable};
pub use prefetch::{analytic_stall, simulate_prefetch, LayerDemand, PrefetchOutcome};
pub use replication::{mean_imbalance, replication_study, ReplicationStudy};
pub use residency::{derive_residency, hot_expert_masks, residency_hit_rate, DerivedResidency};
