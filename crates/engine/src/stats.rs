//! Expert-activation statistics (the Fig. 15 study): per-(layer, expert)
//! selection counts, plus the imbalance metrics the analysis uses.

use moe_json::{FromJson, ToJson};

/// Counts of how often each expert was selected, per layer.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct ActivationStats {
    num_layers: usize,
    num_experts: usize,
    /// `counts[layer][expert]`.
    counts: Vec<Vec<u64>>,
}

impl ActivationStats {
    pub fn new(num_layers: usize, num_experts: usize) -> Self {
        Self {
            num_layers,
            num_experts,
            counts: vec![vec![0; num_experts]; num_layers],
        }
    }

    /// Record one token's selected experts at `layer`.
    pub fn record(&mut self, layer: usize, experts: &[usize]) {
        for &e in experts {
            self.counts[layer][e] += 1;
        }
    }

    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    pub fn num_experts(&self) -> usize {
        self.num_experts
    }

    /// Raw count for (layer, expert).
    pub fn count(&self, layer: usize, expert: usize) -> u64 {
        self.counts[layer][expert]
    }

    /// All counts of one layer.
    pub fn layer(&self, layer: usize) -> &[u64] {
        &self.counts[layer]
    }

    /// Total expert assignments recorded across all layers.
    pub fn total_assignments(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Maximum single-expert count anywhere (the paper quotes MolmoE
    /// peaking near 1M vs DeepSeek-VL2 near 290K).
    pub fn peak_count(&self) -> u64 {
        self.counts.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Max/mean activation ratio for one layer (1.0 = perfectly uniform).
    pub fn imbalance(&self, layer: usize) -> f64 {
        let row = &self.counts[layer];
        let total: u64 = row.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / row.len() as f64;
        let max = row.iter().max().copied().unwrap_or(0) as f64;
        max / mean
    }

    /// Mean max/mean imbalance across layers.
    pub fn mean_imbalance(&self) -> f64 {
        if self.num_layers == 0 {
            return 1.0;
        }
        (0..self.num_layers).map(|l| self.imbalance(l)).sum::<f64>() / self.num_layers as f64
    }

    /// Normalized entropy of one layer's activation distribution
    /// (1.0 = uniform, 0.0 = single expert).
    pub fn normalized_entropy(&self, layer: usize) -> f64 {
        let row = &self.counts[layer];
        let total: u64 = row.iter().sum();
        if total == 0 || row.len() <= 1 {
            return 1.0;
        }
        let mut h = 0.0;
        for &c in row {
            if c > 0 {
                let p = c as f64 / total as f64;
                h -= p * p.ln();
            }
        }
        h / (row.len() as f64).ln()
    }

    /// Merge another stats object (e.g. from a second evaluation shard).
    pub fn merge(&mut self, other: &ActivationStats) {
        assert_eq!(self.num_layers, other.num_layers);
        assert_eq!(self.num_experts, other.num_experts);
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m += t;
            }
        }
    }

    /// Row-normalized activation frequencies (each layer sums to 1), the
    /// heatmap the figure plots.
    pub fn heatmap(&self) -> Vec<Vec<f64>> {
        self.counts
            .iter()
            .map(|row| {
                let total: u64 = row.iter().sum();
                if total == 0 {
                    vec![0.0; row.len()]
                } else {
                    row.iter().map(|&c| c as f64 / total as f64).collect()
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut s = ActivationStats::new(2, 4);
        s.record(0, &[1, 3]);
        s.record(0, &[1]);
        s.record(1, &[0]);
        assert_eq!(s.count(0, 1), 2);
        assert_eq!(s.count(0, 3), 1);
        assert_eq!(s.count(1, 0), 1);
        assert_eq!(s.total_assignments(), 4);
        assert_eq!(s.peak_count(), 2);
    }

    #[test]
    fn uniform_imbalance_is_one() {
        let mut s = ActivationStats::new(1, 4);
        for e in 0..4 {
            s.record(0, &[e]);
        }
        assert_eq!(s.imbalance(0), 1.0);
        assert!((s.normalized_entropy(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_expert_maximal_imbalance() {
        let mut s = ActivationStats::new(1, 4);
        for _ in 0..8 {
            s.record(0, &[2]);
        }
        assert_eq!(s.imbalance(0), 4.0); // max/mean = 8 / 2
        assert_eq!(s.normalized_entropy(0), 0.0);
    }

    #[test]
    fn empty_layer_is_neutral() {
        let s = ActivationStats::new(2, 4);
        assert_eq!(s.imbalance(0), 1.0);
        assert_eq!(s.normalized_entropy(1), 1.0);
        assert_eq!(s.heatmap()[0], vec![0.0; 4]);
    }

    #[test]
    fn heatmap_rows_sum_to_one() {
        let mut s = ActivationStats::new(2, 3);
        s.record(0, &[0, 1]);
        s.record(0, &[2]);
        s.record(1, &[1]);
        let h = s.heatmap();
        for (l, row) in h.iter().enumerate() {
            if s.layer(l).iter().sum::<u64>() > 0 {
                let sum: f64 = row.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ActivationStats::new(1, 2);
        a.record(0, &[0]);
        let mut b = ActivationStats::new(1, 2);
        b.record(0, &[0]);
        b.record(0, &[1]);
        a.merge(&b);
        assert_eq!(a.count(0, 0), 2);
        assert_eq!(a.count(0, 1), 1);
    }
}
