//! Speculative decoding, executed for real: a draft model proposes `gamma`
//! tokens autoregressively; the target verifies them in a single forward
//! pass, accepts the longest matching prefix, emits one bonus/correction
//! token, and rolls its KV cache back past the rejected suffix.
//!
//! With greedy acceptance (`accept iff the draft token equals the target's
//! greedy choice`) the committed sequence is *exactly* the target's greedy
//! output — the invariant the test-suite pins down. This mirrors the
//! lossless guarantee of production speculative decoding.

use moe_json::{FromJson, ToJson};
use moe_tensor::ops::argmax;

use crate::kvcache::KvStore;
use crate::model::MoeTransformer;

/// Outcome of a speculative generation run.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct SpecResult {
    /// Newly generated tokens (prompt excluded).
    pub tokens: Vec<usize>,
    /// Verification cycles executed.
    pub cycles: usize,
    /// Draft tokens proposed in total.
    pub proposed: usize,
    /// Draft tokens accepted in total.
    pub accepted: usize,
}

impl SpecResult {
    /// Fraction of proposed draft tokens the target accepted.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }

    /// Mean committed tokens per verification cycle (the speedup driver).
    pub fn tokens_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.tokens.len() as f64 / self.cycles as f64
        }
    }
}

/// Feed a model every committed token its cache is missing, returning the
/// logits of the last row (the model's prediction for the next token).
fn catch_up(model: &mut MoeTransformer, seq: &[usize], kv: &mut dyn KvStore) -> Vec<f32> {
    let from = kv.len();
    debug_assert!(from < seq.len(), "catch_up with nothing to feed");
    let tokens = &seq[from..];
    let positions: Vec<usize> = (from..seq.len()).collect();
    let logits = model.forward(tokens, &positions, kv);
    logits.row(tokens.len() - 1).to_vec()
}

/// Greedy speculative decoding.
///
/// Both models must share a vocabulary (same-family requirement from the
/// paper). Generates exactly `max_new_tokens` tokens.
pub fn speculative_generate(
    target: &mut MoeTransformer,
    draft: &mut MoeTransformer,
    prompt: &[usize],
    max_new_tokens: usize,
    gamma: usize,
) -> SpecResult {
    assert!(!prompt.is_empty(), "empty prompt");
    assert!(gamma >= 1, "gamma must be at least 1");
    assert_eq!(
        target.config().vocab_size,
        draft.config().vocab_size,
        "draft and target must share a vocabulary"
    );

    let mut target_kv = target.new_kv();
    let mut draft_kv = draft.new_kv();

    // Committed sequence; invariant between cycles: each model's KV cache
    // covers a prefix of `seq` (everything except at least the last
    // committed token).
    let mut seq: Vec<usize> = prompt.to_vec();
    let mut result = SpecResult {
        tokens: Vec::new(),
        cycles: 0,
        proposed: 0,
        accepted: 0,
    };

    if max_new_tokens == 0 {
        return result;
    }

    // Target prefill commits the first token.
    let first_logits = catch_up(target, &seq, &mut target_kv);
    let first = argmax(&first_logits);
    seq.push(first);
    result.tokens.push(first);

    while result.tokens.len() < max_new_tokens {
        // --- Draft phase: catch up, then propose gamma tokens. ---
        let mut proposals = Vec::with_capacity(gamma);
        let mut draft_logits = catch_up(draft, &seq, &mut draft_kv);
        for i in 0..gamma {
            let p = argmax(&draft_logits);
            proposals.push(p);
            if i + 1 < gamma {
                let pos = draft_kv.len();
                debug_assert_eq!(pos, seq.len() + i);
                let logits = draft.forward(&[p], &[pos], &mut draft_kv);
                draft_logits = logits.row(0).to_vec();
            }
        }
        result.proposed += proposals.len();

        // --- Verify phase: one target forward over the uncached committed
        // suffix plus all proposals. ---
        let from = target_kv.len();
        let mut feed: Vec<usize> = seq[from..].to_vec();
        let catchup_rows = feed.len();
        feed.extend_from_slice(&proposals);
        let positions: Vec<usize> = (from..from + feed.len()).collect();
        let logits = target.forward(&feed, &positions, &mut target_kv);

        // Row (catchup_rows - 1 + i) predicts the token after proposal i.
        let mut accepted = 0;
        for (i, &p) in proposals.iter().enumerate() {
            let choice = argmax(logits.row(catchup_rows - 1 + i));
            if choice == p {
                accepted += 1;
            } else {
                break;
            }
        }
        result.accepted += accepted;
        let bonus = argmax(logits.row(catchup_rows - 1 + accepted));

        // Commit the accepted prefix plus the bonus/correction token.
        for &p in &proposals[..accepted] {
            seq.push(p);
            result.tokens.push(p);
        }
        seq.push(bonus);
        result.tokens.push(bonus);
        result.cycles += 1;

        // Roll both caches back to cover exactly seq[..len-1].
        target_kv.truncate(seq.len() - 1);
        draft_kv.truncate((seq.len() - 1).min(draft_kv.len()));
    }

    result.tokens.truncate(max_new_tokens);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenerateParams};
    use moe_model::registry::tiny_test_model;

    fn target() -> MoeTransformer {
        MoeTransformer::new(tiny_test_model(8, 2), 7)
    }

    fn draft(seed: u64) -> MoeTransformer {
        // A smaller dense-ish draft: fewer experts.
        MoeTransformer::new(tiny_test_model(4, 1), seed)
    }

    #[test]
    fn spec_equals_vanilla_greedy() {
        // The lossless guarantee, with an arbitrary (bad) draft.
        let prompt = vec![3usize, 14, 15];
        let vanilla = generate(&mut target(), &prompt, GenerateParams::greedy(20));
        for gamma in [1usize, 2, 4, 7] {
            let spec = speculative_generate(&mut target(), &mut draft(123), &prompt, 20, gamma);
            assert_eq!(spec.tokens, vanilla.tokens, "gamma={gamma}");
        }
    }

    #[test]
    fn perfect_draft_accepts_everything() {
        // Draft == target: every proposal matches the target's greedy
        // choice, so acceptance is 100%.
        let prompt = vec![5usize, 6, 7];
        let spec = speculative_generate(&mut target(), &mut target(), &prompt, 16, 4);
        assert_eq!(spec.accepted, spec.proposed);
        assert!(
            spec.tokens_per_cycle() >= 4.9,
            "{}",
            spec.tokens_per_cycle()
        );
        let vanilla = generate(&mut target(), &prompt, GenerateParams::greedy(16));
        assert_eq!(spec.tokens, vanilla.tokens);
    }

    #[test]
    fn bad_draft_still_correct_but_slow() {
        let prompt = vec![1usize, 2, 3];
        let spec = speculative_generate(&mut target(), &mut draft(999), &prompt, 12, 4);
        let vanilla = generate(&mut target(), &prompt, GenerateParams::greedy(12));
        assert_eq!(spec.tokens, vanilla.tokens);
        assert!(spec.acceptance_rate() < 1.0);
        // Even with zero acceptance every cycle commits one token.
        assert!(spec.tokens_per_cycle() >= 1.0);
    }

    #[test]
    fn cycle_accounting_consistent() {
        let prompt = vec![9usize, 8];
        let spec = speculative_generate(&mut target(), &mut draft(5), &prompt, 15, 3);
        assert_eq!(spec.tokens.len(), 15);
        assert!(spec.proposed >= spec.accepted);
        assert_eq!(spec.proposed, spec.cycles * 3);
        // tokens = 1 (prefill) + sum(accepted_i + 1), possibly truncated.
        assert!(spec.tokens.len() as u64 <= 1 + (spec.accepted + spec.cycles) as u64);
    }

    #[test]
    fn larger_gamma_fewer_cycles_with_good_draft() {
        let prompt = vec![2usize, 4, 6];
        let g1 = speculative_generate(&mut target(), &mut target(), &prompt, 24, 1);
        let g6 = speculative_generate(&mut target(), &mut target(), &prompt, 24, 6);
        assert!(g6.cycles < g1.cycles);
    }

    #[test]
    #[should_panic(expected = "share a vocabulary")]
    fn vocab_mismatch_rejected() {
        let mut small_vocab = tiny_test_model(4, 1);
        small_vocab.vocab_size = 128;
        let mut d = MoeTransformer::new(small_vocab, 1);
        let _ = speculative_generate(&mut target(), &mut d, &[1, 2], 4, 2);
    }

    #[test]
    fn acceptance_rate_bounds() {
        let spec = speculative_generate(&mut target(), &mut draft(77), &[1, 2, 3], 10, 2);
        let rate = spec.acceptance_rate();
        assert!((0.0..=1.0).contains(&rate));
    }
}
