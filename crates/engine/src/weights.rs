//! Weight containers and deterministic initialization.
//!
//! All weights are stored as f32 [`Matrix`] values. Quantized execution is
//! weight-only fake-quantization: weights are passed through the *real*
//! [`QuantizedMatrix`] encode/decode (so they take exactly the values the
//! low-precision format can represent) while accumulation stays in f32 —
//! the same numerics as weight-only-quantized GPU kernels.

use moe_json::{FromJson, ToJson};
use moe_model::ModelConfig;
use moe_tensor::rng::derive_seed;
use moe_tensor::{Matrix, Precision, QuantizedMatrix};

/// One expert's SwiGLU FFN.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct ExpertWeights {
    /// `[ffn_dim x hidden]` gate projection (applied as `x @ W^T`).
    pub gate: Matrix,
    /// `[ffn_dim x hidden]` up projection.
    pub up: Matrix,
    /// `[hidden x ffn_dim]` down projection.
    pub down: Matrix,
}

impl ExpertWeights {
    fn init(hidden: usize, ffn: usize, seed: u64) -> Self {
        let std = (2.0 / (hidden + ffn) as f32).sqrt();
        Self {
            gate: Matrix::random_normal(ffn, hidden, derive_seed(seed, 1), std),
            up: Matrix::random_normal(ffn, hidden, derive_seed(seed, 2), std),
            down: Matrix::random_normal(hidden, ffn, derive_seed(seed, 3), std),
        }
    }

    /// FFN intermediate dimension.
    pub fn ffn_dim(&self) -> usize {
        self.gate.rows()
    }

    fn quantize(&mut self, p: Precision) {
        self.gate = fake_quant(&self.gate, p);
        self.up = fake_quant(&self.up, p);
        self.down = fake_quant(&self.down, p);
    }
}

/// One decoder layer's weights.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct LayerWeights {
    /// `[q_dim x hidden]`.
    pub wq: Matrix,
    /// `[kv_dim x hidden]`.
    pub wk: Matrix,
    /// `[kv_dim x hidden]`.
    pub wv: Matrix,
    /// `[hidden x q_dim]`.
    pub wo: Matrix,
    pub attn_norm: Vec<f32>,
    pub ffn_norm: Vec<f32>,
    /// `[num_experts x hidden]` router; empty matrix for dense layers.
    pub router: Matrix,
    /// Per-expert routing bias (zero-initialized; adjusted by
    /// [`crate::balance`] to emulate aux-loss load balancing, the
    /// mechanism DeepSeek-V3 implements as bias-based balancing). Not
    /// counted as parameters.
    pub router_bias: Vec<f32>,
    /// Routed experts; empty for dense layers.
    pub experts: Vec<ExpertWeights>,
    /// Always-active shared experts.
    pub shared_experts: Vec<ExpertWeights>,
    /// Dense FFN (dense layers only).
    pub dense_ffn: Option<ExpertWeights>,
}

impl LayerWeights {
    /// Whether this layer routes through experts.
    pub fn is_moe(&self) -> bool {
        !self.experts.is_empty()
    }
}

/// All weights of a model.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct ModelWeights {
    /// `[vocab x hidden]` token embedding.
    pub embedding: Matrix,
    /// `[vocab x hidden]` LM head (may alias the embedding values when the
    /// config ties them).
    pub lm_head: Matrix,
    pub final_norm: Vec<f32>,
    pub layers: Vec<LayerWeights>,
    /// Precision the weights were (fake-)quantized to.
    pub precision: Precision,
}

/// Pass a matrix through a quantized encoding and back, so its values are
/// exactly representable in `p`.
pub fn fake_quant(m: &Matrix, p: Precision) -> Matrix {
    if p == Precision::F32 {
        return m.clone();
    }
    QuantizedMatrix::quantize(m, p).dequantize()
}

impl ModelWeights {
    /// Deterministically initialize weights for a config.
    ///
    /// The `router_seed_skew` knob biases router rows: 0.0 keeps logits
    /// balanced in expectation (aux-loss-trained models); positive values
    /// add a per-expert offset drawn once, producing the spiky activation
    /// patterns of models trained without balancing (Fig. 15).
    pub fn init(config: &ModelConfig, seed: u64) -> Self {
        Self::init_with_skew(config, seed, default_router_skew(config))
    }

    /// Like [`ModelWeights::init`] with an explicit router skew.
    pub fn init_with_skew(config: &ModelConfig, seed: u64, router_skew: f32) -> Self {
        let h = config.hidden_size;
        let q_dim = config.num_heads * config.head_dim;
        let kv_dim = config.num_kv_heads * config.head_dim;
        let std = (1.0 / h as f32).sqrt();

        let mut layers = Vec::with_capacity(config.num_layers);
        for l in 0..config.num_layers {
            let ls = derive_seed(seed, 100 + l as u64);
            let is_moe = config.moe.is_some() && l >= config.first_k_dense_layers;
            let (router, experts) = if is_moe {
                let moe = config.moe.as_ref().expect("is_moe checked"); // lint:allow(no-panic-in-lib) -- guarded by the is_moe branch above
                let mut router =
                    Matrix::random_normal(moe.num_experts, h, derive_seed(ls, 10), std);
                // Aux-loss-trained routers select experts near-uniformly;
                // the closest untrained analogue is equal row norms (equal
                // logit variance per expert). Skewed routers get a
                // log-normal per-expert norm spread, so high-variance rows
                // systematically win top-k (Fig. 15's spiky pattern).
                let bias = Matrix::random_normal(moe.num_experts, 1, derive_seed(ls, 11), 1.0);
                for e in 0..moe.num_experts {
                    let norm: f32 = router
                        .row(e)
                        .iter()
                        .map(|v| v * v)
                        .sum::<f32>()
                        .sqrt()
                        .max(1e-12);
                    let scale = (router_skew * bias.get(e, 0)).exp() / norm;
                    for v in router.row_mut(e) {
                        *v *= scale;
                    }
                }
                let experts = (0..moe.num_experts)
                    .map(|e| {
                        ExpertWeights::init(h, moe.expert_ffn_dim, derive_seed(ls, 20 + e as u64))
                    })
                    .collect();
                (router, experts)
            } else {
                (Matrix::zeros(0, 0), Vec::new())
            };

            let shared_experts = if is_moe {
                let moe = config.moe.as_ref().expect("is_moe checked"); // lint:allow(no-panic-in-lib) -- guarded by the is_moe branch above
                (0..moe.num_shared_experts)
                    .map(|e| {
                        ExpertWeights::init(
                            h,
                            moe.shared_expert_ffn_dim,
                            derive_seed(ls, 500 + e as u64),
                        )
                    })
                    .collect()
            } else {
                Vec::new()
            };

            let dense_ffn = if is_moe {
                None
            } else {
                Some(ExpertWeights::init(
                    h,
                    config.dense_ffn_dim,
                    derive_seed(ls, 600),
                ))
            };

            let router_bias = vec![0.0; router.rows()];
            layers.push(LayerWeights {
                wq: Matrix::random_normal(q_dim, h, derive_seed(ls, 1), std),
                wk: Matrix::random_normal(kv_dim, h, derive_seed(ls, 2), std),
                wv: Matrix::random_normal(kv_dim, h, derive_seed(ls, 3), std),
                wo: Matrix::random_normal(h, q_dim, derive_seed(ls, 4), std),
                attn_norm: vec![1.0; h],
                ffn_norm: vec![1.0; h],
                router,
                router_bias,
                experts,
                shared_experts,
                dense_ffn,
            });
        }

        let embedding = Matrix::random_normal(config.vocab_size, h, derive_seed(seed, 1), 0.02);
        let lm_head = if config.tie_embeddings {
            embedding.clone()
        } else {
            Matrix::random_normal(config.vocab_size, h, derive_seed(seed, 2), 0.02)
        };

        Self {
            embedding,
            lm_head,
            final_norm: vec![1.0; h],
            layers,
            precision: Precision::F32,
        }
    }

    /// Fake-quantize every weight matrix to `p` (norms stay f32, as on real
    /// deployments).
    pub fn quantize(&mut self, p: Precision) {
        self.embedding = fake_quant(&self.embedding, p);
        self.lm_head = fake_quant(&self.lm_head, p);
        for layer in &mut self.layers {
            layer.wq = fake_quant(&layer.wq, p);
            layer.wk = fake_quant(&layer.wk, p);
            layer.wv = fake_quant(&layer.wv, p);
            layer.wo = fake_quant(&layer.wo, p);
            if !layer.router.is_empty() {
                layer.router = fake_quant(&layer.router, p);
            }
            for e in &mut layer.experts {
                e.quantize(p);
            }
            for e in &mut layer.shared_experts {
                e.quantize(p);
            }
            if let Some(d) = &mut layer.dense_ffn {
                d.quantize(p);
            }
        }
        self.precision = p;
    }

    /// Total stored f32 values (sanity checks against `ParamBreakdown`).
    pub fn param_count(&self) -> u64 {
        let mut n = (self.embedding.len() + self.lm_head.len() + self.final_norm.len()) as u64;
        for l in &self.layers {
            n += (l.wq.len() + l.wk.len() + l.wv.len() + l.wo.len()) as u64;
            n += (l.attn_norm.len() + l.ffn_norm.len()) as u64;
            n += l.router.len() as u64;
            for e in l.experts.iter().chain(&l.shared_experts) {
                n += (e.gate.len() + e.up.len() + e.down.len()) as u64;
            }
            if let Some(d) = &l.dense_ffn {
                n += (d.gate.len() + d.up.len() + d.down.len()) as u64;
            }
        }
        n
    }
}

/// Default router skew from the config's training metadata.
pub fn default_router_skew(config: &ModelConfig) -> f32 {
    match &config.moe {
        Some(moe) if !moe.aux_loss_balanced => 0.8,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_model::registry::tiny_test_model;
    use moe_model::ParamBreakdown;

    #[test]
    fn init_is_deterministic() {
        let cfg = tiny_test_model(8, 2);
        let a = ModelWeights::init(&cfg, 7);
        let b = ModelWeights::init(&cfg, 7);
        assert_eq!(a, b);
        let c = ModelWeights::init(&cfg, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn param_count_matches_breakdown() {
        let cfg = tiny_test_model(8, 2);
        let w = ModelWeights::init(&cfg, 1);
        let expect = ParamBreakdown::of(&cfg).total();
        assert_eq!(w.param_count(), expect);
    }

    #[test]
    fn layers_have_expected_structure() {
        let mut cfg = tiny_test_model(4, 2);
        cfg.first_k_dense_layers = 1;
        cfg.dense_ffn_dim = 128;
        let w = ModelWeights::init(&cfg, 1);
        assert!(!w.layers[0].is_moe());
        assert!(w.layers[0].dense_ffn.is_some());
        assert!(w.layers[1].is_moe());
        assert_eq!(w.layers[1].experts.len(), 4);
        assert_eq!(w.layers[1].router.rows(), 4);
    }

    #[test]
    fn tied_embeddings_share_values() {
        let mut cfg = tiny_test_model(4, 1);
        cfg.tie_embeddings = true;
        let w = ModelWeights::init(&cfg, 3);
        assert_eq!(w.embedding, w.lm_head);
    }

    #[test]
    fn quantize_changes_values_within_bound() {
        let cfg = tiny_test_model(4, 2);
        let base = ModelWeights::init(&cfg, 5);
        let mut q = base.clone();
        q.quantize(Precision::Int8);
        assert_ne!(base.layers[0].wq, q.layers[0].wq);
        let diff = base.layers[0].wq.max_abs_diff(&q.layers[0].wq);
        // Block-wise int8: error bounded by amax/127 per block.
        assert!(diff < 0.05, "diff {diff}");
        assert_eq!(q.precision, Precision::Int8);
    }

    #[test]
    fn f32_quantize_is_identity() {
        let cfg = tiny_test_model(4, 2);
        let base = ModelWeights::init(&cfg, 5);
        let mut q = base.clone();
        q.quantize(Precision::F32);
        assert_eq!(base, q);
    }

    #[test]
    fn skew_scales_router_only() {
        let cfg = tiny_test_model(8, 2);
        let flat = ModelWeights::init_with_skew(&cfg, 9, 0.0);
        let skewed = ModelWeights::init_with_skew(&cfg, 9, 0.8);
        assert_ne!(flat.layers[0].router, skewed.layers[0].router);
        assert_eq!(flat.layers[0].wq, skewed.layers[0].wq);
        assert_eq!(flat.layers[0].experts, skewed.layers[0].experts);
    }

    #[test]
    fn default_skew_follows_balance_flag() {
        let balanced = tiny_test_model(8, 2);
        assert_eq!(default_router_skew(&balanced), 0.0);
        let mut unbalanced = tiny_test_model(8, 2);
        unbalanced.moe.as_mut().unwrap().aux_loss_balanced = false;
        assert!(default_router_skew(&unbalanced) > 0.0);
    }
}
