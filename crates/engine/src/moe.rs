//! The MoE block: routing and expert execution.
//!
//! Two dispatch strategies implement the same mathematics:
//!
//! * [`moe_forward_unfused`] — the naive path: for each token, run each of
//!   its top-k experts as separate GEMVs (this is what "without Fused MoE"
//!   measures in Fig. 14: per-expert kernels plus scatter/gather).
//! * [`moe_forward_fused`] — the fused path: tokens are sorted by expert,
//!   each expert processes its whole group as one batched GEMM, and
//!   results scatter-add back. On a GPU this is the single fused
//!   grouped-GEMM kernel; here it is the same algorithm (and, per the
//!   tests, the same output to floating-point tolerance).
//!
//! Routing follows the model's [`RouterKind`]: Mixtral-style
//! top-k-then-softmax or DeepSeek-style softmax-then-top-k.

use moe_model::{MoeConfig, RouterKind};
use moe_par as par;
use moe_tensor::matrix::gemv;
use moe_tensor::ops::swiglu_inplace;
use moe_tensor::topk::{softmax_then_top_k, top_k_softmax, TopK};
use moe_tensor::Matrix;

use crate::stats::ActivationStats;
use crate::trace::RoutingTrace;
use crate::weights::{ExpertWeights, LayerWeights};

/// Routing decision for one token.
#[derive(Debug, Clone, PartialEq)]
pub struct Routing {
    /// Selected expert indices with combination weights.
    pub experts: TopK,
}

/// Route every row of `x` through the layer's router.
pub fn route(w: &LayerWeights, moe: &MoeConfig, x: &Matrix) -> Vec<Routing> {
    (0..x.rows())
        .map(|r| {
            let mut logits = gemv(&w.router, x.row(r));
            for (l, b) in logits.iter_mut().zip(&w.router_bias) {
                *l += b;
            }
            let experts = match moe.router {
                RouterKind::TopKSoftmax => top_k_softmax(&logits, moe.top_k),
                RouterKind::SoftmaxTopK => softmax_then_top_k(&logits, moe.top_k),
            };
            Routing { experts }
        })
        .collect()
}

/// One expert's SwiGLU FFN applied to a single row.
pub fn expert_forward_row(e: &ExpertWeights, x: &[f32]) -> Vec<f32> {
    let mut gate = gemv(&e.gate, x);
    let up = gemv(&e.up, x);
    swiglu_inplace(&mut gate, &up);
    gemv(&e.down, &gate)
}

/// One expert's SwiGLU FFN applied to a gathered batch of rows.
pub fn expert_forward_batch(e: &ExpertWeights, x: &Matrix) -> Matrix {
    let mut gate = x.matmul_transposed(&e.gate);
    let up = x.matmul_transposed(&e.up);
    for r in 0..gate.rows() {
        // Split borrows: swiglu row by row.
        let up_row: &[f32] = up.row(r);
        // SAFETY-free workaround: copy the up row is avoided by indexing.
        let gate_row = gate.row_mut(r);
        swiglu_inplace(gate_row, up_row);
    }
    gate.matmul_transposed(&e.down)
}

/// Unfused dispatch: per-token, per-expert GEMVs.
pub fn moe_forward_unfused(
    w: &LayerWeights,
    moe: &MoeConfig,
    x: &Matrix,
    stats: Option<&mut ActivationStats>,
    trace: Option<&mut RoutingTrace>,
    layer: usize,
) -> Matrix {
    let routing = route(w, moe, x);
    record(stats, trace, layer, &routing);
    let mut out = Matrix::zeros(x.rows(), x.cols());
    let rows: Vec<Vec<f32>> = par::map_collect(x.rows(), |r| {
        let mut acc = vec![0.0f32; x.cols()];
        for (i, &e) in routing[r].experts.indices.iter().enumerate() {
            let weight = routing[r].experts.values[i];
            let y = expert_forward_row(&w.experts[e], x.row(r));
            for (a, v) in acc.iter_mut().zip(&y) {
                *a += weight * v;
            }
        }
        acc
    });
    for (r, row) in rows.into_iter().enumerate() {
        out.row_mut(r).copy_from_slice(&row);
    }
    add_shared_experts(w, x, &mut out);
    out
}

/// Fused dispatch: group tokens by expert, one batched GEMM per active
/// expert, scatter-add combine.
pub fn moe_forward_fused(
    w: &LayerWeights,
    moe: &MoeConfig,
    x: &Matrix,
    stats: Option<&mut ActivationStats>,
    trace: Option<&mut RoutingTrace>,
    layer: usize,
) -> Matrix {
    let routing = route(w, moe, x);
    record(stats, trace, layer, &routing);

    // Build per-expert token groups.
    let mut groups: Vec<Vec<(usize, f32)>> = vec![Vec::new(); moe.num_experts];
    for (r, routed) in routing.iter().enumerate() {
        for (i, &e) in routed.experts.indices.iter().enumerate() {
            groups[e].push((r, routed.experts.values[i]));
        }
    }

    // Each active expert processes its group as one batch (in parallel
    // across experts — the grouped-GEMM analogue).
    let results: Vec<(usize, Matrix)> = par::map_collect(groups.len(), |e| {
        let g = &groups[e];
        if g.is_empty() {
            return None;
        }
        let idx: Vec<usize> = g.iter().map(|(r, _)| *r).collect();
        let gathered = x.gather_rows(&idx);
        Some((e, expert_forward_batch(&w.experts[e], &gathered)))
    })
    .into_iter()
    .flatten()
    .collect();

    let mut out = Matrix::zeros(x.rows(), x.cols());
    for (e, y) in results {
        for (slot, &(r, weight)) in groups[e].iter().enumerate() {
            out.scatter_add_row(r, y.row(slot), weight);
        }
    }
    add_shared_experts(w, x, &mut out);
    out
}

fn add_shared_experts(w: &LayerWeights, x: &Matrix, out: &mut Matrix) {
    for shared in &w.shared_experts {
        for r in 0..x.rows() {
            let y = expert_forward_row(shared, x.row(r));
            out.scatter_add_row(r, &y, 1.0);
        }
    }
}

fn record(
    stats: Option<&mut ActivationStats>,
    trace: Option<&mut RoutingTrace>,
    layer: usize,
    routing: &[Routing],
) {
    if let Some(s) = stats {
        for r in routing {
            s.record(layer, &r.experts.indices);
        }
    }
    if let Some(t) = trace {
        for r in routing {
            t.record(layer, &r.experts.indices);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::ModelWeights;
    use moe_model::registry::tiny_test_model;

    fn setup(experts: usize, k: usize) -> (MoeConfig, LayerWeights) {
        let cfg = tiny_test_model(experts, k);
        let w = ModelWeights::init(&cfg, 99);
        (cfg.moe.unwrap(), w.layers.into_iter().next().unwrap())
    }

    #[test]
    fn routing_selects_k_distinct_experts() {
        let (moe, w) = setup(8, 2);
        let x = Matrix::random(5, 64, 1, 0.5);
        for r in route(&w, &moe, &x) {
            assert_eq!(r.experts.indices.len(), 2);
            assert_ne!(r.experts.indices[0], r.experts.indices[1]);
            let sum: f32 = r.experts.values.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn deepseek_routing_weights_not_renormalized() {
        let (mut moe, w) = setup(8, 2);
        moe.router = RouterKind::SoftmaxTopK;
        let x = Matrix::random(5, 64, 2, 0.5);
        for r in route(&w, &moe, &x) {
            let sum: f32 = r.experts.values.iter().sum();
            assert!(sum < 1.0, "softmax-then-topk keeps unnormalized mass");
            assert!(sum > 0.0);
        }
    }

    #[test]
    fn fused_equals_unfused() {
        for (e, k) in [(4usize, 1usize), (8, 2), (8, 8), (16, 4)] {
            let (moe, w) = setup(e, k);
            let x = Matrix::random(13, 64, 3, 0.5);
            let a = moe_forward_unfused(&w, &moe, &x, None, None, 0);
            let b = moe_forward_fused(&w, &moe, &x, None, None, 0);
            assert!(
                a.max_abs_diff(&b) < 1e-4,
                "e={e} k={k}: {}",
                a.max_abs_diff(&b)
            );
        }
    }

    #[test]
    fn expert_batch_equals_row_by_row() {
        let (_, w) = setup(4, 1);
        let x = Matrix::random(7, 64, 4, 0.5);
        let batch = expert_forward_batch(&w.experts[0], &x);
        for r in 0..7 {
            let row = expert_forward_row(&w.experts[0], x.row(r));
            for (a, b) in batch.row(r).iter().zip(&row) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn shared_experts_always_contribute() {
        let (mut moe, mut w) = setup(4, 1);
        let x = Matrix::random(3, 64, 5, 0.5);
        let without = moe_forward_fused(&w, &moe, &x, None, None, 0);
        // Add a shared expert.
        moe.num_shared_experts = 1;
        moe.shared_expert_ffn_dim = 96;
        w.shared_experts = vec![w.experts[0].clone()];
        let with = moe_forward_fused(&w, &moe, &x, None, None, 0);
        assert!(without.max_abs_diff(&with) > 1e-6);
    }

    #[test]
    fn stats_count_routed_tokens() {
        let (moe, w) = setup(8, 2);
        let x = Matrix::random(10, 64, 6, 0.5);
        let mut stats = ActivationStats::new(1, 8);
        let _ = moe_forward_fused(&w, &moe, &x, Some(&mut stats), None, 0);
        assert_eq!(stats.total_assignments(), 10 * 2);
    }

    #[test]
    fn top1_routes_everything_to_argmax_expert() {
        let (moe, w) = setup(4, 1);
        let x = Matrix::random(6, 64, 7, 0.5);
        let routing = route(&w, &moe, &x);
        for (r, routed) in routing.iter().enumerate() {
            let logits = gemv(&w.router, x.row(r));
            let best = moe_tensor::ops::argmax(&logits);
            assert_eq!(routed.experts.indices, vec![best]);
            assert!((routed.experts.values[0] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn randomized_fused_equals_unfused() {
        // Deterministic randomized sweep (replacing the former proptest
        // version): 16 seeded cases over varying seeds and row counts.
        let mut rng = moe_tensor::rng::rng_from_seed(0xF05ED);
        for case in 0..16u64 {
            let seed = rng.next_below(1000) as u64;
            let rows = 1 + rng.next_below(19);
            let (moe, w) = setup(8, 2);
            let x = Matrix::random(rows, 64, seed, 0.5);
            let a = moe_forward_unfused(&w, &moe, &x, None, None, 0);
            let b = moe_forward_fused(&w, &moe, &x, None, None, 0);
            assert!(
                a.max_abs_diff(&b) < 1e-4,
                "case {case}: seed {seed}, rows {rows}, diff {}",
                a.max_abs_diff(&b)
            );
        }
    }
}
