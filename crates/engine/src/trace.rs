//! Routing traces: the per-token, per-layer expert selections of a real
//! generation run, exported as a seeded, replayable artifact.
//!
//! [`ActivationStats`] aggregates *how often* each expert fires; a
//! [`RoutingTrace`] keeps the *sequence* — for every MoE layer, the top-k
//! expert ids of every routed token in token order. That ordering is what
//! `moe-mem` trains its lookahead predictors on: the layer-to-layer expert
//! transitions of one token are invisible in aggregate counts but decide
//! whether a prefetch issued at layer `l` has the right experts warm at
//! layer `l + 1`.
//!
//! A [`TraceArtifact`] bundles the trace with the aggregate stats and the
//! provenance (model name, weight seed) needed to regenerate it
//! bit-for-bit, and round-trips through `moe-json`.

use moe_json::{FromJson, ToJson};
use moe_model::ModelConfig;

use crate::generate::{generate, GenerateParams};
use crate::model::MoeTransformer;
use crate::stats::ActivationStats;

/// Expert selections of every routed token, per layer, in token order.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct RoutingTrace {
    /// Total transformer layers (dense layers stay empty).
    pub num_layers: usize,
    /// Router fan-out: expert ids are `< num_experts`.
    pub num_experts: usize,
    /// Experts recorded per token per layer.
    pub top_k: usize,
    /// `events[layer]` holds `top_k` expert ids per routed token, flattened
    /// in token order. Token `t` of a layer owns the slice
    /// `[t * top_k, (t + 1) * top_k)`.
    pub events: Vec<Vec<u32>>,
}

impl RoutingTrace {
    pub fn new(num_layers: usize, num_experts: usize, top_k: usize) -> Self {
        Self {
            num_layers,
            num_experts,
            top_k,
            events: vec![Vec::new(); num_layers],
        }
    }

    /// Append one token's expert selection at `layer`.
    pub fn record(&mut self, layer: usize, experts: &[usize]) {
        assert!(layer < self.num_layers, "layer {layer} out of range");
        assert_eq!(experts.len(), self.top_k, "one record per routed token");
        for &e in experts {
            assert!(e < self.num_experts, "expert {e} out of range");
            self.events[layer].push(e as u32);
        }
    }

    /// Routed tokens recorded at `layer`.
    pub fn tokens(&self, layer: usize) -> usize {
        self.events[layer].len() / self.top_k.max(1)
    }

    /// Expert ids of token `t` at `layer`.
    pub fn token_experts(&self, layer: usize, t: usize) -> &[u32] {
        &self.events[layer][t * self.top_k..(t + 1) * self.top_k]
    }

    /// Total recorded (token, expert) assignments across all layers.
    pub fn total_assignments(&self) -> u64 {
        self.events.iter().map(|l| l.len() as u64).sum()
    }

    /// Aggregate the trace back into per-layer activation counts. Must
    /// equal the [`ActivationStats`] collected alongside it — the
    /// consistency check `moe-mem` runs before trusting a trace.
    pub fn to_stats(&self) -> ActivationStats {
        let mut stats = ActivationStats::new(self.num_layers, self.num_experts);
        for (layer, events) in self.events.iter().enumerate() {
            for &e in events {
                stats.record(layer, &[e as usize]);
            }
        }
        stats
    }
}

/// A replayable trace with its provenance: which model, which weight seed,
/// and the aggregate stats of the same run.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct TraceArtifact {
    /// Model registry name (down-scaled shape).
    pub model: String,
    /// Weight seed the run used; replaying `(model, seed, prompt)`
    /// regenerates the identical trace.
    pub seed: u64,
    /// Aggregate expert-activation counts of the traced run.
    pub stats: ActivationStats,
    /// The full per-token routing sequence.
    pub trace: RoutingTrace,
}

/// Run a seeded generation and capture both the routing trace and the
/// aggregate stats — the predictor-training export `moe-mem` consumes.
pub fn capture_trace(
    model_name: &str,
    config: ModelConfig,
    seed: u64,
    prompt: &[usize],
    params: GenerateParams,
) -> TraceArtifact {
    let mut model = MoeTransformer::new(config, seed);
    model.enable_stats();
    model.enable_trace();
    let _ = generate(&mut model, prompt, params);
    let stats = model
        .take_stats()
        .unwrap_or_else(|| ActivationStats::new(0, 0));
    let trace = model
        .take_trace()
        .unwrap_or_else(|| RoutingTrace::new(0, 0, 0));
    TraceArtifact {
        model: model_name.to_string(),
        seed,
        stats,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_model::registry::tiny_test_model;

    fn capture(seed: u64) -> TraceArtifact {
        capture_trace(
            "tiny-8x2",
            tiny_test_model(8, 2),
            seed,
            &[1, 2, 3, 4, 5],
            GenerateParams::greedy(6),
        )
    }

    #[test]
    fn trace_json_round_trips() {
        let artifact = capture(42);
        let json = moe_json::to_string(&artifact);
        let back = moe_json::from_str::<TraceArtifact>(&json).unwrap();
        assert_eq!(artifact, back);
        assert!(artifact.trace.total_assignments() > 0);
    }

    #[test]
    fn trace_aggregates_to_the_collected_stats() {
        let artifact = capture(7);
        assert_eq!(artifact.trace.to_stats(), artifact.stats);
    }

    #[test]
    fn trace_capture_is_deterministic() {
        assert_eq!(capture(11), capture(11));
        assert_ne!(capture(11).trace, capture(12).trace);
    }

    #[test]
    fn trace_counts_tokens_per_layer() {
        // 5 prompt tokens prefill + 5 decode steps (the 6th token needs no
        // forward) = 10 routed tokens per MoE layer, top-2 each.
        let artifact = capture(3);
        let trace = &artifact.trace;
        assert_eq!(trace.num_layers, 2);
        assert_eq!(trace.top_k, 2);
        for layer in 0..trace.num_layers {
            assert_eq!(trace.tokens(layer), 10);
            for t in 0..trace.tokens(layer) {
                let experts = trace.token_experts(layer, t);
                assert_eq!(experts.len(), 2);
                assert!(experts.iter().all(|&e| (e as usize) < trace.num_experts));
            }
        }
    }

    #[test]
    fn dense_layers_stay_empty() {
        let mut cfg = tiny_test_model(4, 2);
        cfg.first_k_dense_layers = 1;
        cfg.dense_ffn_dim = 128;
        let mut m = MoeTransformer::new(cfg, 9);
        m.enable_trace();
        let mut kv = m.new_kv();
        let _ = m.forward(&[1, 2, 3], &[0, 1, 2], &mut kv);
        let trace = m.take_trace().unwrap();
        assert_eq!(trace.tokens(0), 0, "dense layer must not route");
        assert_eq!(trace.tokens(1), 3);
        assert!(m.take_trace().is_none());
    }
}
