//! Grouped-query attention with rotary position embeddings over a KV
//! cache.
//!
//! The kernel processes a batch of rows belonging to *one* sequence at
//! given absolute positions — a prefill passes all prompt positions, a
//! decode step passes one. Causality is enforced by only attending to
//! cached tokens at positions `<=` the query's position (the cache is
//! append-only, so position equals cache index).

use moe_tensor::matrix::{dot, gemv};
use moe_tensor::ops::{rope_inplace, softmax_inplace};
use moe_tensor::Matrix;

use crate::kvcache::KvStore;
use crate::weights::LayerWeights;

/// Static attention geometry, derived from the model config.
#[derive(Debug, Clone, Copy)]
pub struct AttentionParams {
    pub num_heads: usize,
    pub num_kv_heads: usize,
    pub head_dim: usize,
    pub rope_theta: f32,
}

impl AttentionParams {
    pub fn q_dim(&self) -> usize {
        self.num_heads * self.head_dim
    }

    pub fn kv_dim(&self) -> usize {
        self.num_kv_heads * self.head_dim
    }

    /// Queries per KV head (GQA group size).
    pub fn group_size(&self) -> usize {
        self.num_heads / self.num_kv_heads
    }
}

/// Attention for a single (already-normed) row at absolute position `pos`:
/// project QKV, apply RoPE, append to the cache, attend causally, project
/// out. Returns the output row.
pub fn attention_row(
    params: &AttentionParams,
    w: &LayerWeights,
    x_row: &[f32],
    pos: usize,
    kv: &mut dyn KvStore,
    layer: usize,
) -> Vec<f32> {
    debug_assert_eq!(kv.kv_dim(), params.kv_dim(), "cache width mismatch");
    let hd = params.head_dim;
    let scale = 1.0 / (hd as f32).sqrt();

    let mut q = gemv(&w.wq, x_row);
    let mut k = gemv(&w.wk, x_row);
    let v = gemv(&w.wv, x_row);

    for head in 0..params.num_heads {
        rope_inplace(&mut q[head * hd..(head + 1) * hd], pos, params.rope_theta);
    }
    for head in 0..params.num_kv_heads {
        rope_inplace(&mut k[head * hd..(head + 1) * hd], pos, params.rope_theta);
    }
    kv.write(layer, pos, &k, &v);

    // Attend: each query head against its KV-head group, over all cached
    // positions <= pos.
    let ctx = pos + 1;
    let mut attn_acc = vec![0.0f32; params.q_dim()];
    let group = params.group_size();
    let mut scores = vec![0.0f32; ctx];
    for head in 0..params.num_heads {
        let kv_head = head / group;
        let q_h = &q[head * hd..(head + 1) * hd];
        for (t, s) in scores.iter_mut().enumerate() {
            let k_t = &kv.key(layer, t)[kv_head * hd..(kv_head + 1) * hd];
            *s = dot(q_h, k_t) * scale;
        }
        softmax_inplace(&mut scores);
        let acc = &mut attn_acc[head * hd..(head + 1) * hd];
        for (t, &s) in scores.iter().enumerate() {
            let v_t = &kv.value(layer, t)[kv_head * hd..(kv_head + 1) * hd];
            for (a, vv) in acc.iter_mut().zip(v_t) {
                *a += s * vv;
            }
        }
    }

    gemv(&w.wo, &attn_acc)
}

/// Run attention for `x` (`[T x hidden]`, already normed) at absolute
/// `positions`, reading/appending the sequence's KV cache for `layer`.
/// Returns the `[T x hidden]` attention output (before the output
/// projection's residual add).
pub fn attention_forward(
    params: &AttentionParams,
    w: &LayerWeights,
    x: &Matrix,
    positions: &[usize],
    kv: &mut dyn KvStore,
    layer: usize,
) -> Matrix {
    assert_eq!(x.rows(), positions.len(), "one position per row");
    let mut out = Matrix::zeros(x.rows(), w.wo.rows());
    for (row, &pos) in positions.iter().enumerate() {
        let o = attention_row(params, w, x.row(row), pos, kv, layer);
        out.row_mut(row).copy_from_slice(&o);
    }
    out
}

/// Batched attention across *independent sequences*: row `r` of `x` is one
/// token of sequence `r`, with its own KV cache and absolute position —
/// the attention half of a continuous-batching decode step.
pub fn attention_forward_multi(
    params: &AttentionParams,
    w: &LayerWeights,
    x: &Matrix,
    positions: &[usize],
    kvs: &mut [&mut dyn KvStore],
    layer: usize,
) -> Matrix {
    assert_eq!(x.rows(), positions.len(), "one position per row");
    assert_eq!(x.rows(), kvs.len(), "one KV cache per row");
    let mut out = Matrix::zeros(x.rows(), w.wo.rows());
    for (row, (&pos, kv)) in positions.iter().zip(kvs.iter_mut()).enumerate() {
        let o = attention_row(params, w, x.row(row), pos, *kv, layer);
        out.row_mut(row).copy_from_slice(&o);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kvcache::{ContiguousKv, PagedKv};
    use crate::weights::ModelWeights;
    use moe_model::registry::tiny_test_model;

    fn setup() -> (AttentionParams, ModelWeights) {
        let cfg = tiny_test_model(4, 2);
        let params = AttentionParams {
            num_heads: cfg.num_heads,
            num_kv_heads: cfg.num_kv_heads,
            head_dim: cfg.head_dim,
            rope_theta: cfg.rope_theta,
        };
        let w = ModelWeights::init(&cfg, 42);
        (params, w)
    }

    #[test]
    fn output_shape_matches_input() {
        let (p, w) = setup();
        let x = Matrix::random(3, 64, 1, 0.5);
        let mut kv = ContiguousKv::new(2, p.kv_dim());
        let out = attention_forward(&p, &w.layers[0], &x, &[0, 1, 2], &mut kv, 0);
        assert_eq!((out.rows(), out.cols()), (3, 64));
        assert_eq!(kv.layer_len(0), 3);
    }

    #[test]
    fn prefill_then_decode_equals_full_prefill() {
        // Processing tokens [0..4] at once must equal [0..3] then [3].
        let (p, w) = setup();
        let x = Matrix::random(4, 64, 2, 0.5);

        let mut kv_a = ContiguousKv::new(2, p.kv_dim());
        let full = attention_forward(&p, &w.layers[0], &x, &[0, 1, 2, 3], &mut kv_a, 0);

        let mut kv_b = ContiguousKv::new(2, p.kv_dim());
        let prefix = x.gather_rows(&[0, 1, 2]);
        let _ = attention_forward(&p, &w.layers[0], &prefix, &[0, 1, 2], &mut kv_b, 0);
        let last = x.gather_rows(&[3]);
        let step = attention_forward(&p, &w.layers[0], &last, &[3], &mut kv_b, 0);

        for (a, b) in full.row(3).iter().zip(step.row(0)) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn paged_and_contiguous_caches_agree() {
        let (p, w) = setup();
        let x = Matrix::random(20, 64, 3, 0.5);
        let positions: Vec<usize> = (0..20).collect();

        let mut kv_c = ContiguousKv::new(2, p.kv_dim());
        let mut kv_p = PagedKv::with_block_size(2, p.kv_dim(), 7);
        let out_c = attention_forward(&p, &w.layers[0], &x, &positions, &mut kv_c, 0);
        let out_p = attention_forward(&p, &w.layers[0], &x, &positions, &mut kv_p, 0);
        assert!(out_c.max_abs_diff(&out_p) < 1e-6);
    }

    #[test]
    fn first_token_ignores_nothing_later() {
        // Token 0's output must not depend on later tokens (causality).
        let (p, w) = setup();
        let x1 = Matrix::random(1, 64, 4, 0.5);
        let mut x3 = Matrix::zeros(3, 64);
        x3.row_mut(0).copy_from_slice(x1.row(0));
        x3.row_mut(1)
            .copy_from_slice(Matrix::random(1, 64, 5, 0.5).row(0));
        x3.row_mut(2)
            .copy_from_slice(Matrix::random(1, 64, 6, 0.5).row(0));

        let mut kv_a = ContiguousKv::new(2, p.kv_dim());
        let solo = attention_forward(&p, &w.layers[0], &x1, &[0], &mut kv_a, 0);
        let mut kv_b = ContiguousKv::new(2, p.kv_dim());
        let multi = attention_forward(&p, &w.layers[0], &x3, &[0, 1, 2], &mut kv_b, 0);

        for (a, b) in solo.row(0).iter().zip(multi.row(0)) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn position_changes_output_via_rope() {
        let (p, w) = setup();
        let x = Matrix::random(1, 64, 7, 0.5);
        let mut kv_a = ContiguousKv::new(2, p.kv_dim());
        let at0 = attention_forward(&p, &w.layers[0], &x, &[0], &mut kv_a, 0);
        // Same content at position 5 (after 5 dummy tokens).
        let mut kv_b = ContiguousKv::new(2, p.kv_dim());
        let dummies = Matrix::random(5, 64, 8, 0.5);
        let _ = attention_forward(&p, &w.layers[0], &dummies, &[0, 1, 2, 3, 4], &mut kv_b, 0);
        let at5 = attention_forward(&p, &w.layers[0], &x, &[5], &mut kv_b, 0);
        assert!(at0.max_abs_diff(&at5) > 1e-4);
    }

    #[test]
    fn fp8_kv_cache_output_close_to_exact() {
        use crate::kvcache::QuantizedKv;
        let (p, w) = setup();
        let x = Matrix::random(8, 64, 11, 0.5);
        let positions: Vec<usize> = (0..8).collect();

        let mut exact_kv = ContiguousKv::new(2, p.kv_dim());
        let exact = attention_forward(&p, &w.layers[0], &x, &positions, &mut exact_kv, 0);

        let mut q_kv = QuantizedKv::new(
            ContiguousKv::new(2, p.kv_dim()),
            moe_tensor::Precision::Fp8E4M3,
        );
        let approx = attention_forward(&p, &w.layers[0], &x, &positions, &mut q_kv, 0);

        let diff = exact.max_abs_diff(&approx);
        assert!(diff > 0.0, "fp8 KV must perturb");
        assert!(diff < 0.2, "fp8 KV error too large: {diff}");
    }

    #[test]
    fn gqa_group_size() {
        let p = AttentionParams {
            num_heads: 8,
            num_kv_heads: 2,
            head_dim: 16,
            rope_theta: 1e4,
        };
        assert_eq!(p.group_size(), 4);
        assert_eq!(p.q_dim(), 128);
        assert_eq!(p.kv_dim(), 32);
    }
}
