//! KV-cache storage: a contiguous reference implementation and a
//! vLLM-style paged implementation, behind one trait, proven equivalent by
//! tests and used interchangeably by the attention kernel.
//!
//! Writes are append-only *per layer* and indexed by absolute token
//! position: a prefill pass appends tokens `0..T` to layer 0, then to
//! layer 1, and so on — each layer's length advances independently (as in
//! real engines, where the cache for layer `l+1` lags while layer `l`
//! computes).
//!
//! The paged layout allocates fixed-size token blocks per layer on demand,
//! so memory growth is quantized to blocks — the property the serving
//! runtime's block manager (in `moe-runtime`) relies on. `truncate`
//! supports the KV rollback speculative decoding needs.

/// Tokens per KV block (vLLM's default block size).
pub const KV_BLOCK_TOKENS: usize = 16;

/// Read/write interface over a single sequence's KV history.
pub trait KvStore {
    /// Number of layers this store covers.
    fn num_layers(&self) -> usize;
    /// KV vector width (kv_heads * head_dim).
    fn kv_dim(&self) -> usize;
    /// Tokens stored for `layer`.
    fn layer_len(&self, layer: usize) -> usize;
    /// Tokens fully stored across all layers.
    fn len(&self) -> usize {
        (0..self.num_layers())
            .map(|l| self.layer_len(l))
            .min()
            .unwrap_or(0)
    }
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Append token `t`'s K and V for `layer`; `t` must equal
    /// `layer_len(layer)` (append-only).
    fn write(&mut self, layer: usize, t: usize, k: &[f32], v: &[f32]);
    /// Key vector of token `t` at `layer`.
    fn key(&self, layer: usize, t: usize) -> &[f32];
    /// Value vector of token `t` at `layer`.
    fn value(&self, layer: usize, t: usize) -> &[f32];
    /// Drop all tokens at positions `>= new_len` in every layer
    /// (speculative-decoding rollback).
    fn truncate(&mut self, new_len: usize);
}

/// Simple contiguous per-layer storage (the correctness reference).
#[derive(Debug, Clone)]
pub struct ContiguousKv {
    kv_dim: usize,
    keys: Vec<Vec<f32>>,
    values: Vec<Vec<f32>>,
}

impl ContiguousKv {
    pub fn new(num_layers: usize, kv_dim: usize) -> Self {
        Self {
            kv_dim,
            keys: vec![Vec::new(); num_layers],
            values: vec![Vec::new(); num_layers],
        }
    }
}

impl KvStore for ContiguousKv {
    fn num_layers(&self) -> usize {
        self.keys.len()
    }

    fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    fn layer_len(&self, layer: usize) -> usize {
        self.keys[layer].len() / self.kv_dim
    }

    fn write(&mut self, layer: usize, t: usize, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), self.kv_dim);
        assert_eq!(v.len(), self.kv_dim);
        assert_eq!(
            t,
            self.layer_len(layer),
            "non-append write at layer {layer}"
        );
        self.keys[layer].extend_from_slice(k);
        self.values[layer].extend_from_slice(v);
    }

    fn key(&self, layer: usize, t: usize) -> &[f32] {
        &self.keys[layer][t * self.kv_dim..(t + 1) * self.kv_dim]
    }

    fn value(&self, layer: usize, t: usize) -> &[f32] {
        &self.values[layer][t * self.kv_dim..(t + 1) * self.kv_dim]
    }

    fn truncate(&mut self, new_len: usize) {
        for l in 0..self.keys.len() {
            let keep = new_len.min(self.layer_len(l)) * self.kv_dim;
            self.keys[l].truncate(keep);
            self.values[l].truncate(keep);
        }
    }
}

/// One physical block: K and V for up to `block_tokens` tokens of one
/// layer.
#[derive(Debug, Clone)]
struct Block {
    keys: Vec<f32>,
    values: Vec<f32>,
}

/// Paged storage: per layer, a block table mapping logical block index to
/// a pool slot; blocks allocated on demand and recycled on truncation.
#[derive(Debug, Clone)]
pub struct PagedKv {
    kv_dim: usize,
    block_tokens: usize,
    lens: Vec<usize>,
    pool: Vec<Block>,
    free: Vec<usize>,
    /// `tables[layer][logical_block] = pool index`.
    tables: Vec<Vec<usize>>,
}

impl PagedKv {
    pub fn new(num_layers: usize, kv_dim: usize) -> Self {
        Self::with_block_size(num_layers, kv_dim, KV_BLOCK_TOKENS)
    }

    pub fn with_block_size(num_layers: usize, kv_dim: usize, block_tokens: usize) -> Self {
        assert!(block_tokens >= 1, "block size must be positive");
        Self {
            kv_dim,
            block_tokens,
            lens: vec![0; num_layers],
            pool: Vec::new(),
            free: Vec::new(),
            tables: vec![Vec::new(); num_layers],
        }
    }

    /// Physical blocks currently allocated (across all layers).
    pub fn allocated_blocks(&self) -> usize {
        self.pool.len() - self.free.len()
    }

    fn alloc_block(&mut self) -> usize {
        if let Some(idx) = self.free.pop() {
            idx
        } else {
            self.pool.push(Block {
                keys: vec![0.0; self.block_tokens * self.kv_dim],
                values: vec![0.0; self.block_tokens * self.kv_dim],
            });
            self.pool.len() - 1
        }
    }

    fn slot(&self, layer: usize, t: usize) -> (usize, usize) {
        let logical = t / self.block_tokens;
        let offset = t % self.block_tokens;
        (self.tables[layer][logical], offset)
    }
}

impl KvStore for PagedKv {
    fn num_layers(&self) -> usize {
        self.tables.len()
    }

    fn kv_dim(&self) -> usize {
        self.kv_dim
    }

    fn layer_len(&self, layer: usize) -> usize {
        self.lens[layer]
    }

    fn write(&mut self, layer: usize, t: usize, k: &[f32], v: &[f32]) {
        assert_eq!(k.len(), self.kv_dim);
        assert_eq!(t, self.lens[layer], "non-append write at layer {layer}");
        let logical = t / self.block_tokens;
        if logical == self.tables[layer].len() {
            let b = self.alloc_block();
            self.tables[layer].push(b);
        }
        let (block, offset) = self.slot(layer, t);
        let start = offset * self.kv_dim;
        self.pool[block].keys[start..start + self.kv_dim].copy_from_slice(k);
        self.pool[block].values[start..start + self.kv_dim].copy_from_slice(v);
        self.lens[layer] = t + 1;
    }

    fn key(&self, layer: usize, t: usize) -> &[f32] {
        debug_assert!(t < self.lens[layer]);
        let (block, offset) = self.slot(layer, t);
        let start = offset * self.kv_dim;
        &self.pool[block].keys[start..start + self.kv_dim]
    }

    fn value(&self, layer: usize, t: usize) -> &[f32] {
        debug_assert!(t < self.lens[layer]);
        let (block, offset) = self.slot(layer, t);
        let start = offset * self.kv_dim;
        &self.pool[block].values[start..start + self.kv_dim]
    }

    fn truncate(&mut self, new_len: usize) {
        let needed_blocks = new_len.div_ceil(self.block_tokens);
        for layer in 0..self.tables.len() {
            if new_len < self.lens[layer] {
                self.lens[layer] = new_len;
            }
            while let Some(idx) = self.tables[layer].pop() {
                if self.tables[layer].len() < needed_blocks {
                    self.tables[layer].push(idx);
                    break;
                }
                self.free.push(idx);
            }
        }
    }
}

/// KV-cache quantization: wraps any store and rounds K/V vectors through a
/// reduced-precision encoding on write (fp8 KV cache is a standard
/// deployment option; the values stored are exactly those the format can
/// represent, while attention math stays f32 — as on real hardware).
#[derive(Debug, Clone)]
pub struct QuantizedKv<S> {
    inner: S,
    precision: moe_tensor::Precision,
}

impl<S: KvStore> QuantizedKv<S> {
    pub fn new(inner: S, precision: moe_tensor::Precision) -> Self {
        Self { inner, precision }
    }

    pub fn precision(&self) -> moe_tensor::Precision {
        self.precision
    }

    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: KvStore> KvStore for QuantizedKv<S> {
    fn num_layers(&self) -> usize {
        self.inner.num_layers()
    }

    fn kv_dim(&self) -> usize {
        self.inner.kv_dim()
    }

    fn layer_len(&self, layer: usize) -> usize {
        self.inner.layer_len(layer)
    }

    fn write(&mut self, layer: usize, t: usize, k: &[f32], v: &[f32]) {
        let mut kq = k.to_vec();
        let mut vq = v.to_vec();
        moe_tensor::quant::fake_quant_slice(&mut kq, self.precision);
        moe_tensor::quant::fake_quant_slice(&mut vq, self.precision);
        self.inner.write(layer, t, &kq, &vq);
    }

    fn key(&self, layer: usize, t: usize) -> &[f32] {
        self.inner.key(layer, t)
    }

    fn value(&self, layer: usize, t: usize) -> &[f32] {
        self.inner.value(layer, t)
    }

    fn truncate(&mut self, new_len: usize) {
        self.inner.truncate(new_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Write `tokens` tokens into every layer, layer-major like a prefill.
    fn fill<S: KvStore>(store: &mut S, from: usize, to: usize, layers: usize, kv_dim: usize) {
        for l in 0..layers {
            for t in from..to {
                let k: Vec<f32> = (0..kv_dim)
                    .map(|i| (t * 1000 + l * 100 + i) as f32)
                    .collect();
                let v: Vec<f32> = k.iter().map(|x| -x).collect();
                store.write(l, t, &k, &v);
            }
        }
    }

    #[test]
    fn contiguous_roundtrip() {
        let mut s = ContiguousKv::new(2, 4);
        fill(&mut s, 0, 5, 2, 4);
        assert_eq!(s.len(), 5);
        assert_eq!(s.key(1, 3)[0], 3100.0);
        assert_eq!(s.value(1, 3)[0], -3100.0);
    }

    #[test]
    fn len_is_min_across_layers() {
        let mut s = ContiguousKv::new(2, 4);
        s.write(0, 0, &[0.0; 4], &[0.0; 4]);
        assert_eq!(s.layer_len(0), 1);
        assert_eq!(s.len(), 0); // layer 1 not written yet
        s.write(1, 0, &[0.0; 4], &[0.0; 4]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-append write")]
    fn out_of_order_write_rejected() {
        let mut s = ContiguousKv::new(1, 4);
        s.write(0, 1, &[0.0; 4], &[0.0; 4]);
    }

    #[test]
    fn paged_matches_contiguous() {
        let (layers, kv_dim, tokens) = (3, 8, 45);
        let mut a = ContiguousKv::new(layers, kv_dim);
        let mut b = PagedKv::with_block_size(layers, kv_dim, 16);
        fill(&mut a, 0, tokens, layers, kv_dim);
        fill(&mut b, 0, tokens, layers, kv_dim);
        for l in 0..layers {
            for t in 0..tokens {
                assert_eq!(a.key(l, t), b.key(l, t), "key l={l} t={t}");
                assert_eq!(a.value(l, t), b.value(l, t), "value l={l} t={t}");
            }
        }
    }

    #[test]
    fn paged_allocates_blocks_lazily() {
        let mut s = PagedKv::with_block_size(2, 4, 16);
        assert_eq!(s.allocated_blocks(), 0);
        fill(&mut s, 0, 1, 2, 4);
        assert_eq!(s.allocated_blocks(), 2); // one block per layer
        fill(&mut s, 1, 17, 2, 4); // crosses the block boundary
        assert_eq!(s.allocated_blocks(), 4);
    }

    #[test]
    fn truncate_returns_blocks_and_preserves_prefix() {
        let mut s = PagedKv::with_block_size(1, 4, 4);
        fill(&mut s, 0, 10, 1, 4);
        assert_eq!(s.allocated_blocks(), 3);
        let kept: Vec<f32> = s.key(0, 3).to_vec();
        s.truncate(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.allocated_blocks(), 1);
        assert_eq!(s.key(0, 3), &kept[..]);
        // Re-extend after truncation reuses freed blocks.
        fill(&mut s, 4, 12, 1, 4);
        assert_eq!(s.len(), 12);
        assert_eq!(s.allocated_blocks(), 3);
    }

    #[test]
    fn truncate_is_idempotent_and_clamps() {
        let mut s = ContiguousKv::new(2, 4);
        fill(&mut s, 0, 6, 2, 4);
        s.truncate(3);
        s.truncate(3);
        s.truncate(100); // beyond len: no-op
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn quantized_kv_rounds_values() {
        let mut q = QuantizedKv::new(ContiguousKv::new(1, 4), moe_tensor::Precision::Fp8E4M3);
        let k = [1.2345f32, -0.006789, 3.25, 100.7];
        q.write(0, 0, &k, &k);
        let stored = q.key(0, 0);
        // Exactly representable values survive; the rest are rounded.
        assert_eq!(stored[2], 3.25);
        assert_ne!(stored[0], k[0]);
        for (s, orig) in stored.iter().zip(&k) {
            // Relative 1/8 for normals, absolute half-subnormal-step floor.
            let tol = (orig.abs() / 8.0).max(2f32.powi(-10));
            assert!((s - orig).abs() <= tol, "{s} vs {orig}");
        }
    }

    #[test]
    fn quantized_kv_f32_is_transparent() {
        let mut q = QuantizedKv::new(ContiguousKv::new(2, 4), moe_tensor::Precision::F32);
        fill(&mut q, 0, 5, 2, 4);
        assert_eq!(q.key(1, 3)[0], 3100.0);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn quantized_kv_supports_truncate() {
        let mut q = QuantizedKv::new(
            PagedKv::with_block_size(1, 4, 4),
            moe_tensor::Precision::F16,
        );
        fill(&mut q, 0, 10, 1, 4);
        q.truncate(4);
        assert_eq!(q.len(), 4);
        fill(&mut q, 4, 8, 1, 4);
        assert_eq!(q.len(), 8);
    }

    // Deterministic randomized sweeps (replacing the former proptest versions).

    #[test]
    fn randomized_paged_equals_contiguous() {
        let mut rng = moe_tensor::rng::rng_from_seed(0x4b_c1);
        for _ in 0..32 {
            let tokens = 1 + rng.next_below(59);
            let block = 1 + rng.next_below(19);
            let kv_dim = 1 + rng.next_below(11);
            let mut a = ContiguousKv::new(2, kv_dim);
            let mut b = PagedKv::with_block_size(2, kv_dim, block);
            fill(&mut a, 0, tokens, 2, kv_dim);
            fill(&mut b, 0, tokens, 2, kv_dim);
            for t in 0..tokens {
                assert_eq!(a.key(0, t), b.key(0, t));
                assert_eq!(a.value(1, t), b.value(1, t));
            }
        }
    }

    #[test]
    fn randomized_truncate_then_refill_consistent() {
        let mut rng = moe_tensor::rng::rng_from_seed(0x4b_c2);
        for _ in 0..64 {
            let first = 1 + rng.next_below(39);
            let keep = rng.next_below(first + 1);
            let extra = rng.next_below(20);
            let mut s = PagedKv::with_block_size(1, 4, 8);
            fill(&mut s, 0, first, 1, 4);
            s.truncate(keep);
            fill(&mut s, keep, keep + extra, 1, 4);
            assert_eq!(s.len(), keep + extra);
            for t in 0..keep + extra {
                assert_eq!(s.key(0, t)[0], (t * 1000) as f32);
            }
        }
    }

    #[test]
    fn randomized_blocks_never_leak() {
        let mut rng = moe_tensor::rng::rng_from_seed(0x4b_c3);
        for _ in 0..48 {
            // Alternate extends and truncates; allocated blocks always
            // match ceil(len/block).
            let n_ops = 1 + rng.next_below(19);
            let mut s = PagedKv::with_block_size(1, 2, 4);
            let mut len = 0usize;
            for i in 0..n_ops {
                let target = rng.next_below(30);
                if i % 2 == 0 && target >= len {
                    fill(&mut s, len, target, 1, 2);
                    len = target;
                } else {
                    let t = target.min(len);
                    s.truncate(t);
                    len = t;
                }
                assert_eq!(s.allocated_blocks(), len.div_ceil(4));
            }
        }
    }
}
