//! Autoregressive generation: greedy and temperature sampling over the
//! executor, with KV-cache reuse across steps.

use moe_json::{FromJson, ToJson};
use moe_tensor::ops::{argmax, softmax_inplace};
use moe_tensor::rng::{rng_from_seed, sample_categorical};

use crate::model::MoeTransformer;

/// Sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, ToJson, FromJson)]
pub struct GenerateParams {
    pub max_new_tokens: usize,
    /// 0.0 selects greedy decoding.
    pub temperature: f32,
    /// Keep only the `k` most likely tokens before sampling.
    pub top_k: Option<usize>,
    /// Keep the smallest token set with cumulative probability `>= p`
    /// (nucleus sampling).
    pub top_p: Option<f32>,
    /// Sampling seed (unused for greedy).
    pub seed: u64,
}

impl GenerateParams {
    pub fn greedy(max_new_tokens: usize) -> Self {
        Self {
            max_new_tokens,
            temperature: 0.0,
            top_k: None,
            top_p: None,
            seed: 0,
        }
    }

    pub fn sampled(max_new_tokens: usize, temperature: f32, seed: u64) -> Self {
        assert!(temperature > 0.0, "use greedy() for temperature 0");
        Self {
            max_new_tokens,
            temperature,
            top_k: None,
            top_p: None,
            seed,
        }
    }

    /// Restrict sampling to the `k` most likely tokens.
    pub fn with_top_k(mut self, k: usize) -> Self {
        assert!(k >= 1, "top_k must be at least 1");
        self.top_k = Some(k);
        self
    }

    /// Nucleus sampling with cumulative probability `p`.
    pub fn with_top_p(mut self, p: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&p) && p > 0.0,
            "top_p must be in (0, 1]"
        );
        self.top_p = Some(p);
        self
    }
}

/// Zero out probabilities outside the top-k / nucleus set (in place, on an
/// already-softmaxed distribution).
pub fn apply_top_k_top_p(probs: &mut [f32], top_k: Option<usize>, top_p: Option<f32>) {
    let mut order: Vec<usize> = (0..probs.len()).collect();
    order.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]));

    let mut keep = probs.len();
    if let Some(k) = top_k {
        keep = keep.min(k.max(1));
    }
    if let Some(p) = top_p {
        let mut cum = 0.0f32;
        let mut nucleus = 0usize;
        for &idx in &order {
            cum += probs[idx];
            nucleus += 1;
            if cum >= p {
                break;
            }
        }
        keep = keep.min(nucleus.max(1));
    }
    for &idx in &order[keep..] {
        probs[idx] = 0.0;
    }
}

/// Output of one generation run.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct Generated {
    /// Newly generated tokens (prompt excluded).
    pub tokens: Vec<usize>,
    /// Decode steps executed (equals `tokens.len()`).
    pub steps: usize,
}

/// Generate from a prompt, reusing the KV cache across steps.
pub fn generate(model: &mut MoeTransformer, prompt: &[usize], params: GenerateParams) -> Generated {
    assert!(!prompt.is_empty(), "empty prompt");
    let mut kv = model.new_kv();
    let mut rng = rng_from_seed(params.seed);

    let positions: Vec<usize> = (0..prompt.len()).collect();
    let logits = model.forward(prompt, &positions, &mut kv);
    let mut last_row: Vec<f32> = logits.row(prompt.len() - 1).to_vec();

    let mut tokens = Vec::with_capacity(params.max_new_tokens);
    for step in 0..params.max_new_tokens {
        let next = if params.temperature > 0.0 {
            for v in last_row.iter_mut() {
                *v /= params.temperature;
            }
            softmax_inplace(&mut last_row);
            apply_top_k_top_p(&mut last_row, params.top_k, params.top_p);
            sample_categorical(&mut rng, &last_row)
        } else {
            argmax(&last_row)
        };
        tokens.push(next);
        if step + 1 == params.max_new_tokens {
            break;
        }
        let pos = prompt.len() + step;
        let logits = model.forward(&[next], &[pos], &mut kv);
        last_row.copy_from_slice(logits.row(0));
    }

    Generated {
        steps: tokens.len(),
        tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_model::registry::tiny_test_model;
    use moe_tensor::Matrix;

    fn tiny(seed: u64) -> MoeTransformer {
        MoeTransformer::new(tiny_test_model(8, 2), seed)
    }

    #[test]
    fn greedy_is_deterministic() {
        let prompt = [1usize, 2, 3];
        let a = generate(&mut tiny(5), &prompt, GenerateParams::greedy(12));
        let b = generate(&mut tiny(5), &prompt, GenerateParams::greedy(12));
        assert_eq!(a, b);
        assert_eq!(a.tokens.len(), 12);
    }

    #[test]
    fn greedy_with_kv_equals_full_recompute() {
        // The strongest KV-cache correctness check: token-by-token with
        // cache must equal recomputing the whole sequence from scratch at
        // every step.
        let prompt = vec![4usize, 9, 33];
        let max_new = 8;
        let cached = generate(&mut tiny(11), &prompt, GenerateParams::greedy(max_new));

        let mut seq = prompt.clone();
        let mut recomputed = Vec::new();
        for _ in 0..max_new {
            let mut m = tiny(11);
            let mut kv = m.new_kv();
            let positions: Vec<usize> = (0..seq.len()).collect();
            let logits = m.forward(&seq, &positions, &mut kv);
            let next = argmax(logits.row(seq.len() - 1));
            recomputed.push(next);
            seq.push(next);
        }
        assert_eq!(cached.tokens, recomputed);
    }

    #[test]
    fn sampling_seed_controls_output() {
        let prompt = [1usize, 2];
        let a = generate(&mut tiny(5), &prompt, GenerateParams::sampled(16, 1.5, 1));
        let b = generate(&mut tiny(5), &prompt, GenerateParams::sampled(16, 1.5, 1));
        let c = generate(&mut tiny(5), &prompt, GenerateParams::sampled(16, 1.5, 2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn high_temperature_diversifies() {
        // At very high temperature the distribution is near-uniform, so
        // outputs should differ from greedy.
        let prompt = [7usize, 7, 7];
        let greedy = generate(&mut tiny(5), &prompt, GenerateParams::greedy(16));
        let hot = generate(&mut tiny(5), &prompt, GenerateParams::sampled(16, 50.0, 3));
        assert_ne!(greedy.tokens, hot.tokens);
    }

    #[test]
    fn tokens_stay_in_vocab() {
        let g = generate(
            &mut tiny(6),
            &[1, 2, 3],
            GenerateParams::sampled(32, 2.0, 9),
        );
        assert!(g.tokens.iter().all(|&t| t < 256));
    }

    #[test]
    fn zero_new_tokens_is_prefill_only() {
        let g = generate(&mut tiny(6), &[1, 2, 3], GenerateParams::greedy(0));
        assert!(g.tokens.is_empty());
        assert_eq!(g.steps, 0);
    }

    #[test]
    fn fused_and_unfused_generate_identically() {
        let prompt = [10usize, 20, 30];
        let mut fused = tiny(8);
        fused.set_fused_moe(true);
        let mut unfused = tiny(8);
        unfused.set_fused_moe(false);
        let a = generate(&mut fused, &prompt, GenerateParams::greedy(10));
        let b = generate(&mut unfused, &prompt, GenerateParams::greedy(10));
        assert_eq!(a.tokens, b.tokens);
    }

    #[test]
    #[should_panic(expected = "empty prompt")]
    fn empty_prompt_rejected() {
        let _ = generate(&mut tiny(1), &[], GenerateParams::greedy(1));
    }

    #[test]
    fn top_k_one_equals_greedy() {
        // top_k = 1 makes sampling deterministic-greedy at any temperature.
        let prompt = [2usize, 4, 8];
        let greedy = generate(&mut tiny(4), &prompt, GenerateParams::greedy(12));
        let k1 = generate(
            &mut tiny(4),
            &prompt,
            GenerateParams::sampled(12, 5.0, 77).with_top_k(1),
        );
        assert_eq!(greedy.tokens, k1.tokens);
    }

    #[test]
    fn tiny_top_p_equals_greedy() {
        // A near-zero nucleus keeps only the argmax token.
        let prompt = [2usize, 4, 8];
        let greedy = generate(&mut tiny(4), &prompt, GenerateParams::greedy(12));
        let p = generate(
            &mut tiny(4),
            &prompt,
            GenerateParams::sampled(12, 3.0, 77).with_top_p(1e-6),
        );
        assert_eq!(greedy.tokens, p.tokens);
    }

    #[test]
    fn top_k_restricts_support() {
        let mut probs = vec![0.1, 0.4, 0.3, 0.2];
        apply_top_k_top_p(&mut probs, Some(2), None);
        assert_eq!(probs, vec![0.0, 0.4, 0.3, 0.0]);
    }

    #[test]
    fn top_p_keeps_smallest_covering_set() {
        let mut probs = vec![0.5, 0.3, 0.15, 0.05];
        apply_top_k_top_p(&mut probs, None, Some(0.75));
        // 0.5 + 0.3 >= 0.75: keep exactly two.
        assert_eq!(probs, vec![0.5, 0.3, 0.0, 0.0]);
    }

    #[test]
    fn combined_filters_take_stricter() {
        let mut probs = vec![0.5, 0.3, 0.15, 0.05];
        apply_top_k_top_p(&mut probs, Some(3), Some(0.5));
        assert_eq!(probs, vec![0.5, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn filtered_sampling_stays_in_support() {
        // With top_k = 2 every sampled token must be one of the two most
        // likely at its step; verify indirectly: outputs differ from pure
        // sampling but remain deterministic per seed.
        let prompt = [1usize, 3, 5];
        let a = generate(
            &mut tiny(4),
            &prompt,
            GenerateParams::sampled(20, 2.0, 9).with_top_k(2),
        );
        let b = generate(
            &mut tiny(4),
            &prompt,
            GenerateParams::sampled(20, 2.0, 9).with_top_k(2),
        );
        assert_eq!(a, b);
        assert!(a.tokens.iter().all(|&t| t < 256));
    }

    #[test]
    fn logits_are_finite() {
        let mut m = tiny(3);
        let mut kv = m.new_kv();
        let logits: Matrix = m.forward(&[1, 2, 3, 4], &[0, 1, 2, 3], &mut kv);
        assert!(logits.as_slice().iter().all(|v| v.is_finite()));
    }
}
