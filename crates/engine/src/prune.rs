//! Weight-level expert pruning (Section 6.2), the functional counterpart
//! of `moe_model::prune`:
//!
//! * **Inter-expert** — score each expert by the product of its router-row
//!   norm (how much traffic it attracts) and its weight norm, drop the
//!   lowest-scoring fraction, and remove the matching router rows.
//! * **Intra-expert** — score each FFN hidden unit by
//!   `|gate_row| * |down_column|` (its contribution path), and drop the
//!   lowest-scoring units from gate/up rows and down columns.

use moe_model::{ModelConfig, PruneKind, PruneSpec};
use moe_tensor::Matrix;

use crate::model::MoeTransformer;
use crate::weights::{ExpertWeights, ModelWeights};

fn row_norm(m: &Matrix, r: usize) -> f32 {
    m.row(r).iter().map(|v| v * v).sum::<f32>().sqrt()
}

fn col_norm(m: &Matrix, c: usize) -> f32 {
    (0..m.rows())
        .map(|r| m.get(r, c) * m.get(r, c))
        .sum::<f32>()
        .sqrt()
}

/// Indices of the `keep` highest-scoring entries, in ascending index order
/// (preserves relative structure).
fn keep_indices(scores: &[f32], keep: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    let mut kept: Vec<usize> = order.into_iter().take(keep).collect();
    kept.sort_unstable();
    kept
}

fn prune_expert_intra(e: &ExpertWeights, keep: usize) -> ExpertWeights {
    let ffn = e.ffn_dim();
    let scores: Vec<f32> = (0..ffn)
        .map(|i| row_norm(&e.gate, i) * col_norm(&e.down, i))
        .collect();
    let kept = keep_indices(&scores, keep);

    let hidden = e.gate.cols();
    let mut gate = Matrix::zeros(keep, hidden);
    let mut up = Matrix::zeros(keep, hidden);
    let mut down = Matrix::zeros(e.down.rows(), keep);
    for (new_i, &old_i) in kept.iter().enumerate() {
        gate.row_mut(new_i).copy_from_slice(e.gate.row(old_i));
        up.row_mut(new_i).copy_from_slice(e.up.row(old_i));
        for r in 0..e.down.rows() {
            down.set(r, new_i, e.down.get(r, old_i));
        }
    }
    ExpertWeights { gate, up, down }
}

/// Apply a pruning spec to (config, weights) in place.
pub fn prune_weights(config: &mut ModelConfig, weights: &mut ModelWeights, spec: PruneSpec) {
    let moe = config.moe.as_mut().expect("pruning a dense model"); // lint:allow(no-panic-in-lib) -- caller contract: pruning applies only to MoE configs, fail fast on misuse
    match spec.kind {
        PruneKind::InterExpert => {
            let removed = (moe.num_experts as f64 * spec.ratio).round() as usize;
            let keep = (moe.num_experts - removed).max(1);
            for layer in &mut weights.layers {
                if !layer.is_moe() {
                    continue;
                }
                let scores: Vec<f32> = (0..layer.experts.len())
                    .map(|e| {
                        let traffic = row_norm(&layer.router, e);
                        let weight: f32 = layer.experts[e].gate.frobenius_norm()
                            + layer.experts[e].down.frobenius_norm();
                        traffic * weight
                    })
                    .collect();
                let kept = keep_indices(&scores, keep);
                layer.experts = kept.iter().map(|&e| layer.experts[e].clone()).collect();
                let mut router = Matrix::zeros(keep, layer.router.cols());
                for (new_e, &old_e) in kept.iter().enumerate() {
                    router
                        .row_mut(new_e)
                        .copy_from_slice(layer.router.row(old_e));
                }
                layer.router = router;
            }
            moe.num_experts = keep;
            moe.top_k = moe.top_k.min(keep);
        }
        PruneKind::IntraExpert => {
            let keep = (((moe.expert_ffn_dim as f64) * (1.0 - spec.ratio)).round() as usize).max(1);
            for layer in &mut weights.layers {
                for e in &mut layer.experts {
                    *e = prune_expert_intra(e, keep);
                }
            }
            moe.expert_ffn_dim = keep;
        }
    }
}

/// Convenience: prune a built transformer in place.
pub fn prune_transformer(model: &mut MoeTransformer, spec: PruneSpec) {
    let (config, weights) = model.parts_mut();
    prune_weights(config, weights, spec);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GenerateParams};
    use moe_model::registry::tiny_test_model;
    use moe_model::ParamBreakdown;

    fn tiny() -> MoeTransformer {
        MoeTransformer::new(tiny_test_model(8, 2), 21)
    }

    #[test]
    fn inter_prune_drops_experts_and_router_rows() {
        let mut m = tiny();
        prune_transformer(&mut m, PruneSpec::new(PruneKind::InterExpert, 0.5));
        assert_eq!(m.config().moe.as_ref().unwrap().num_experts, 4);
        for layer in &m.weights().layers {
            assert_eq!(layer.experts.len(), 4);
            assert_eq!(layer.router.rows(), 4);
        }
        assert!(m.config().validate().is_empty());
    }

    #[test]
    fn intra_prune_shrinks_ffn_dims() {
        let mut m = tiny();
        prune_transformer(&mut m, PruneSpec::new(PruneKind::IntraExpert, 0.25));
        assert_eq!(m.config().moe.as_ref().unwrap().expert_ffn_dim, 72);
        for layer in &m.weights().layers {
            for e in &layer.experts {
                assert_eq!(e.ffn_dim(), 72);
                assert_eq!(e.down.cols(), 72);
            }
        }
    }

    #[test]
    fn pruned_model_still_generates() {
        for spec in [
            PruneSpec::new(PruneKind::InterExpert, 0.25),
            PruneSpec::new(PruneKind::IntraExpert, 0.5),
        ] {
            let mut m = tiny();
            prune_transformer(&mut m, spec);
            let g = generate(&mut m, &[1, 2, 3], GenerateParams::greedy(8));
            assert_eq!(g.tokens.len(), 8);
        }
    }

    #[test]
    fn pruning_changes_outputs() {
        let base = generate(&mut tiny(), &[5, 6, 7], GenerateParams::greedy(10));
        let mut m = tiny();
        prune_transformer(&mut m, PruneSpec::new(PruneKind::InterExpert, 0.5));
        let pruned = generate(&mut m, &[5, 6, 7], GenerateParams::greedy(10));
        assert_ne!(base.tokens, pruned.tokens);
    }

    #[test]
    fn param_count_shrinks_consistently_with_config_accounting() {
        let mut m = tiny();
        prune_transformer(&mut m, PruneSpec::new(PruneKind::IntraExpert, 0.5));
        // The weight store and the analytic accounting must agree exactly.
        assert_eq!(
            m.weights().param_count(),
            ParamBreakdown::of(m.config()).total()
        );
    }

    #[test]
    fn mild_intra_prune_perturbs_logits_less_than_heavy() {
        let prompt = [1usize, 2, 3, 4];
        let positions = [0usize, 1, 2, 3];
        let mut base = tiny();
        let mut kv = base.new_kv();
        let ref_logits = base.forward(&prompt, &positions, &mut kv);

        let diff_of = |ratio: f64| {
            let mut m = tiny();
            prune_transformer(&mut m, PruneSpec::new(PruneKind::IntraExpert, ratio));
            let mut kv = m.new_kv();
            let logits = m.forward(&prompt, &positions, &mut kv);
            logits.max_abs_diff(&ref_logits)
        };
        let mild = diff_of(0.125);
        let heavy = diff_of(0.75);
        assert!(mild < heavy, "mild {mild} vs heavy {heavy}");
        assert!(mild > 0.0);
    }

    #[test]
    fn keep_indices_selects_best_in_order() {
        let scores = [0.1, 5.0, 3.0, 4.0];
        assert_eq!(keep_indices(&scores, 2), vec![1, 3]);
        assert_eq!(keep_indices(&scores, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn inter_prune_keeps_highest_traffic_experts() {
        let mut m = tiny();
        // Record which experts score highest in layer 0 before pruning.
        let layer = &m.weights().layers[0];
        let scores: Vec<f32> = (0..8)
            .map(|e| {
                row_norm(&layer.router, e)
                    * (layer.experts[e].gate.frobenius_norm()
                        + layer.experts[e].down.frobenius_norm())
            })
            .collect();
        let expect = keep_indices(&scores, 4);
        let expected_experts: Vec<ExpertWeights> =
            expect.iter().map(|&e| layer.experts[e].clone()).collect();

        prune_transformer(&mut m, PruneSpec::new(PruneKind::InterExpert, 0.5));
        assert_eq!(m.weights().layers[0].experts, expected_experts);
    }
}
