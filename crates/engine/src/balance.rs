//! Router load-balancing calibration — the inference-time analogue of the
//! auxiliary load-balancing loss the balanced models were trained with
//! (and literally the mechanism of DeepSeek-V3's bias-based balancing):
//! iteratively adjust each expert's routing bias so observed selection
//! frequencies approach uniform.
//!
//! Untrained random routers are *not* balanced — hidden states are
//! anisotropic, so a few router rows dominate top-k selection. Calibrating
//! the bias reproduces the property aux-loss training gives real models,
//! which the Fig. 15 activation study depends on.

use crate::model::MoeTransformer;
use moe_tensor::rng::{derive_seed, rng_from_seed};

/// Calibration hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct BalanceParams {
    /// Calibration rounds.
    pub rounds: usize,
    /// Tokens per round.
    pub tokens_per_round: usize,
    /// Bias step size per round.
    pub lr: f32,
}

impl Default for BalanceParams {
    fn default() -> Self {
        Self {
            rounds: 6,
            tokens_per_round: 256,
            lr: 1.0,
        }
    }
}

/// Calibrate every MoE layer's router bias toward uniform expert
/// utilization, using uniform random-token forward passes as the
/// calibration stream. Returns the final mean max/mean imbalance.
pub fn balance_routers(model: &mut MoeTransformer, seed: u64, params: BalanceParams) -> f64 {
    balance_routers_with(model, seed, params, |rng, _global, vocab| {
        rng.next_below(vocab)
    })
}

/// Like [`balance_routers`] with a caller-provided token sampler, so the
/// calibration distribution can match the measurement distribution (as
/// aux-loss training balances on the model's own training mix).
pub fn balance_routers_with(
    model: &mut MoeTransformer,
    seed: u64,
    params: BalanceParams,
    mut sample_token: impl FnMut(&mut moe_tensor::rng::DetRng, usize, usize) -> usize,
) -> f64 {
    let Some(moe) = model.config().moe.clone() else {
        return 1.0;
    };
    let vocab = model.config().vocab_size;
    let num_experts = moe.num_experts;
    let mut final_imbalance = 1.0;

    for round in 0..params.rounds {
        let mut rng = rng_from_seed(derive_seed(seed, 0xBA1 + round as u64));
        model.enable_stats();
        // Short random documents keep attention cost bounded.
        let doc = 64usize;
        let mut processed = 0;
        while processed < params.tokens_per_round {
            let n = doc.min(params.tokens_per_round - processed);
            let tokens: Vec<usize> = (0..n)
                .map(|i| sample_token(&mut rng, processed + i, vocab))
                .collect();
            let positions: Vec<usize> = (0..n).collect();
            let mut kv = model.new_kv();
            let _ = model.forward(&tokens, &positions, &mut kv);
            processed += n;
        }
        let stats = model.take_stats().expect("stats enabled"); // lint:allow(no-panic-in-lib) -- stats collection was enabled earlier in this function
        final_imbalance = stats.mean_imbalance();

        // Robbins–Monro-style decaying step keeps the bias from
        // overshooting the O(1) logit scale and oscillating.
        let lr = params.lr / (1.0 + round as f32);
        apply_bias_update(model, &stats, lr);
    }
    let _ = num_experts;
    final_imbalance
}

/// One bias-balancing update from observed activation statistics: push
/// under-used experts up and over-used experts down by the (capped)
/// log-frequency ratio. Exposed so callers can calibrate on their own
/// token streams.
pub fn apply_bias_update(
    model: &mut MoeTransformer,
    stats: &crate::stats::ActivationStats,
    lr: f32,
) {
    let num_experts = stats.num_experts().max(1);
    for (layer_idx, layer) in model.parts_mut().1.layers.iter_mut().enumerate() {
        if layer.router_bias.is_empty() {
            continue;
        }
        let counts = stats.layer(layer_idx);
        let total: u64 = counts.iter().sum();
        if total == 0 {
            continue;
        }
        let uniform = total as f32 / num_experts as f32;
        for (e, bias) in layer.router_bias.iter_mut().enumerate() {
            let freq = counts[e] as f32;
            let step = ((freq + 1.0) / (uniform + 1.0)).ln().clamp(-1.5, 1.5);
            *bias -= lr * step;
        }
        // Selection is invariant to a common bias shift; keep the vector
        // centred for interpretability.
        let mean = layer.router_bias.iter().sum::<f32>() / num_experts as f32;
        for b in layer.router_bias.iter_mut() {
            *b -= mean;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ActivationStats;
    use moe_model::registry::tiny_test_model;
    use moe_tensor::rng::rng_from_seed;

    fn measure_imbalance(model: &mut MoeTransformer, seed: u64) -> f64 {
        model.enable_stats();
        let mut rng = rng_from_seed(seed);
        for _ in 0..8 {
            let tokens: Vec<usize> = (0..64).map(|_| rng.next_below(256)).collect();
            let positions: Vec<usize> = (0..64).collect();
            let mut kv = model.new_kv();
            let _ = model.forward(&tokens, &positions, &mut kv);
        }
        let stats: ActivationStats = model.take_stats().unwrap();
        stats.mean_imbalance()
    }

    #[test]
    fn calibration_reduces_imbalance_substantially() {
        let mut model = MoeTransformer::new(tiny_test_model(32, 2), 5);
        let before = measure_imbalance(&mut model, 99);
        balance_routers(&mut model, 13, BalanceParams::default());
        let after = measure_imbalance(&mut model, 99);
        assert!(
            after < before * 0.75,
            "calibration did not balance: before {before}, after {after}"
        );
        // The plateau sits above the balls-in-bins floor (~1.5 at this
        // sample size) but well below the uncalibrated level.
        assert!(after < 2.9, "after {after}");
    }

    #[test]
    fn calibration_noop_on_dense_model() {
        let dense =
            moe_model::ModelConfig::dense("d", moe_model::Family::Custom, 2, 64, 4, 2, 96, 256);
        let mut model = MoeTransformer::new(dense, 1);
        assert_eq!(
            balance_routers(&mut model, 1, BalanceParams::default()),
            1.0
        );
    }

    #[test]
    fn calibration_is_deterministic() {
        let run = || {
            let mut m = MoeTransformer::new(tiny_test_model(16, 2), 3);
            balance_routers(&mut m, 11, BalanceParams::default());
            m.weights().layers[0].router_bias.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn biases_sum_to_roughly_zero() {
        // The update is log-ratio against uniform, so biases stay centred.
        let mut m = MoeTransformer::new(tiny_test_model(16, 2), 3);
        balance_routers(&mut m, 11, BalanceParams::default());
        let sum: f32 = m.weights().layers[0].router_bias.iter().sum();
        let scale: f32 = m.weights().layers[0]
            .router_bias
            .iter()
            .map(|b| b.abs())
            .sum::<f32>()
            .max(1e-6);
        assert!(sum.abs() / scale < 0.5, "sum {sum}, scale {scale}");
    }
}
