//! # moe-engine
//!
//! The functional MoE transformer executor: a real (CPU, f32) forward pass
//! for any [`moe_model::ModelConfig`], with every mechanism the paper
//! benchmarks implemented for real:
//!
//! * GQA attention with RoPE over a KV cache — both contiguous and paged
//!   storage, proven equivalent ([`attention`], [`kvcache`]);
//! * top-k expert routing (Mixtral- and DeepSeek-style) and expert SwiGLU
//!   FFNs, with **fused** (sort-by-expert grouped execution) and
//!   **unfused** (per-token loop) dispatch paths that produce identical
//!   outputs ([`moe`]);
//! * weight quantization (weight-only fake-quant through the real
//!   [`moe_tensor::QuantizedMatrix`] encodings) ([`weights`]);
//! * inter- and intra-expert structured pruning at the weight level
//!   ([`prune`]);
//! * greedy / temperature generation ([`generate`]) and speculative
//!   decoding with the exact greedy-equivalence guarantee ([`spec`]);
//! * expert-activation statistics for the Fig. 15 study ([`stats`]), and
//!   per-token routing traces exported as seeded replayable artifacts for
//!   `moe-mem`'s prefetch predictors ([`trace`]).
//!
//! Weights are deterministic seeded random values: performance experiments
//! never depend on weight *values* (only shapes), and functional
//! experiments (equivalence, routing, pruning) are exercised genuinely.
//! Models are run at down-scaled dimensions (see
//! `moe_model::registry::tiny_test_model`) so the suite runs in
//! milliseconds.

#![forbid(unsafe_code)]

pub mod attention;
pub mod balance;
pub mod generate;
pub mod kvcache;
pub mod model;
pub mod moe;
pub mod prune;
pub mod spec;
pub mod stats;
pub mod trace;
pub mod weights;

pub use generate::{GenerateParams, Generated};
pub use kvcache::{ContiguousKv, KvStore, PagedKv, QuantizedKv, KV_BLOCK_TOKENS};
pub use model::MoeTransformer;
pub use stats::ActivationStats;
pub use trace::{capture_trace, RoutingTrace, TraceArtifact};
pub use weights::ModelWeights;
