//! The full decoder-only MoE transformer: embeddings, stacked layers
//! (attention + MoE/dense FFN with pre-RMSNorm and residuals), final norm
//! and LM head.

use moe_model::ModelConfig;
use moe_tensor::ops::rmsnorm_rows;
use moe_tensor::Matrix;

use crate::attention::{attention_forward, attention_forward_multi, AttentionParams};
use crate::kvcache::{KvStore, PagedKv};
use crate::moe::{expert_forward_row, moe_forward_fused, moe_forward_unfused};
use crate::stats::ActivationStats;
use crate::trace::RoutingTrace;
use crate::weights::ModelWeights;

/// How a forward pass maps rows to KV caches.
enum KvMode<'a, 'b> {
    /// All rows belong to one sequence.
    Single(&'a mut dyn KvStore),
    /// Row `r` is one token of independent sequence `r`.
    Multi(&'a mut [&'b mut dyn KvStore]),
}

/// A runnable model: config + weights + execution knobs.
#[derive(Debug, Clone)]
pub struct MoeTransformer {
    config: ModelConfig,
    weights: ModelWeights,
    fused_moe: bool,
    stats: Option<ActivationStats>,
    trace: Option<RoutingTrace>,
    tokens_processed: u64,
}

impl MoeTransformer {
    /// Build a model with deterministic seeded weights.
    pub fn new(config: ModelConfig, seed: u64) -> Self {
        let problems = config.validate();
        assert!(problems.is_empty(), "invalid config: {problems:?}");
        let weights = ModelWeights::init(&config, seed);
        Self {
            config,
            weights,
            fused_moe: true,
            stats: None,
            trace: None,
            tokens_processed: 0,
        }
    }

    /// Build from pre-made weights (pruned / quantized variants).
    pub fn with_weights(config: ModelConfig, weights: ModelWeights) -> Self {
        Self {
            config,
            weights,
            fused_moe: true,
            stats: None,
            trace: None,
            tokens_processed: 0,
        }
    }

    /// Total tokens this model has run forward passes over — the compute
    /// that optimizations like prefix caching save.
    pub fn tokens_processed(&self) -> u64 {
        self.tokens_processed
    }

    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// Mutable access for in-place transforms (pruning, quantization).
    pub fn parts_mut(&mut self) -> (&mut ModelConfig, &mut ModelWeights) {
        (&mut self.config, &mut self.weights)
    }

    /// Select fused or unfused MoE dispatch.
    pub fn set_fused_moe(&mut self, fused: bool) {
        self.fused_moe = fused;
    }

    pub fn fused_moe(&self) -> bool {
        self.fused_moe
    }

    /// Start collecting expert-activation statistics.
    pub fn enable_stats(&mut self) {
        let experts = self.config.moe.as_ref().map(|m| m.num_experts).unwrap_or(0);
        self.stats = Some(ActivationStats::new(self.config.num_layers, experts));
    }

    /// Stop collecting and return the statistics.
    pub fn take_stats(&mut self) -> Option<ActivationStats> {
        self.stats.take()
    }

    /// Start recording the per-token routing trace (see
    /// [`crate::trace::RoutingTrace`]).
    pub fn enable_trace(&mut self) {
        let (experts, top_k) = self
            .config
            .moe
            .as_ref()
            .map(|m| (m.num_experts, m.top_k))
            .unwrap_or((0, 0));
        self.trace = Some(RoutingTrace::new(self.config.num_layers, experts, top_k));
    }

    /// Stop recording and return the routing trace.
    pub fn take_trace(&mut self) -> Option<RoutingTrace> {
        self.trace.take()
    }

    fn attention_params(&self) -> AttentionParams {
        AttentionParams {
            num_heads: self.config.num_heads,
            num_kv_heads: self.config.num_kv_heads,
            head_dim: self.config.head_dim,
            rope_theta: self.config.rope_theta,
        }
    }

    /// Allocate a fresh paged KV cache sized for this model.
    pub fn new_kv(&self) -> PagedKv {
        PagedKv::new(self.config.num_layers, self.attention_params().kv_dim())
    }

    /// Forward `tokens` at absolute `positions` through the model,
    /// returning `[T x vocab]` logits. The KV cache must contain exactly
    /// the tokens at positions `0..positions[0]`.
    pub fn forward(
        &mut self,
        tokens: &[usize],
        positions: &[usize],
        kv: &mut dyn KvStore,
    ) -> Matrix {
        self.forward_impl(tokens, positions, KvMode::Single(kv))
    }

    /// Batched forward across *independent sequences*: row `r` is one
    /// token of sequence `r` with its own KV cache — a continuous-batching
    /// decode step. The MoE/FFN half runs over the whole batch at once
    /// (where the batching win lives); attention is per sequence.
    pub fn forward_multi(
        &mut self,
        tokens: &[usize],
        positions: &[usize],
        kvs: &mut [&mut dyn KvStore],
    ) -> Matrix {
        assert_eq!(tokens.len(), kvs.len(), "one KV cache per token row");
        self.forward_impl(tokens, positions, KvMode::Multi(kvs))
    }

    fn forward_impl(
        &mut self,
        tokens: &[usize],
        positions: &[usize],
        mut kv: KvMode<'_, '_>,
    ) -> Matrix {
        assert_eq!(tokens.len(), positions.len());
        assert!(!tokens.is_empty(), "empty forward");
        for &t in tokens {
            assert!(t < self.config.vocab_size, "token {t} out of vocab");
        }
        self.tokens_processed += tokens.len() as u64;

        let params = self.attention_params();
        let h = self.config.hidden_size;
        let mut x = self.weights.embedding.gather_rows(tokens);
        let mut normed = Matrix::zeros(x.rows(), h);

        for layer_idx in 0..self.config.num_layers {
            let is_moe = self.config.moe.is_some() && layer_idx >= self.config.first_k_dense_layers;

            // Attention block.
            rmsnorm_rows(
                &x,
                &self.weights.layers[layer_idx].attn_norm,
                self.config.norm_eps,
                &mut normed,
            );
            let attn = match &mut kv {
                KvMode::Single(store) => attention_forward(
                    &params,
                    &self.weights.layers[layer_idx],
                    &normed,
                    positions,
                    *store,
                    layer_idx,
                ),
                KvMode::Multi(stores) => attention_forward_multi(
                    &params,
                    &self.weights.layers[layer_idx],
                    &normed,
                    positions,
                    stores,
                    layer_idx,
                ),
            };
            for r in 0..x.rows() {
                x.scatter_add_row(r, attn.row(r), 1.0);
            }

            // FFN block.
            rmsnorm_rows(
                &x,
                &self.weights.layers[layer_idx].ffn_norm,
                self.config.norm_eps,
                &mut normed,
            );
            let ffn = if is_moe {
                let moe = self.config.moe.as_ref().expect("is_moe checked").clone(); // lint:allow(no-panic-in-lib) -- guarded by the is_moe branch above
                let w = &self.weights.layers[layer_idx];
                if self.fused_moe {
                    moe_forward_fused(
                        w,
                        &moe,
                        &normed,
                        self.stats.as_mut(),
                        self.trace.as_mut(),
                        layer_idx,
                    )
                } else {
                    moe_forward_unfused(
                        w,
                        &moe,
                        &normed,
                        self.stats.as_mut(),
                        self.trace.as_mut(),
                        layer_idx,
                    )
                }
            } else {
                let w = self.weights.layers[layer_idx]
                    .dense_ffn
                    .as_ref()
                    .expect("dense layer has a dense FFN"); // lint:allow(no-panic-in-lib) -- layer kind checked by the surrounding match
                let mut out = Matrix::zeros(normed.rows(), h);
                for r in 0..normed.rows() {
                    let y = expert_forward_row(w, normed.row(r));
                    out.row_mut(r).copy_from_slice(&y);
                }
                out
            };
            for r in 0..x.rows() {
                x.scatter_add_row(r, ffn.row(r), 1.0);
            }
        }

        rmsnorm_rows(
            &x,
            &self.weights.final_norm,
            self.config.norm_eps,
            &mut normed,
        );
        normed.matmul_transposed(&self.weights.lm_head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_model::registry::tiny_test_model;

    fn tiny() -> MoeTransformer {
        MoeTransformer::new(tiny_test_model(8, 2), 7)
    }

    #[test]
    fn forward_shapes() {
        let mut m = tiny();
        let mut kv = m.new_kv();
        let logits = m.forward(&[1, 2, 3], &[0, 1, 2], &mut kv);
        assert_eq!((logits.rows(), logits.cols()), (3, 256));
        assert_eq!(kv.len(), 3);
    }

    #[test]
    fn forward_is_deterministic() {
        let mut a = tiny();
        let mut b = tiny();
        let mut kva = a.new_kv();
        let mut kvb = b.new_kv();
        let la = a.forward(&[5, 6], &[0, 1], &mut kva);
        let lb = b.forward(&[5, 6], &[0, 1], &mut kvb);
        assert_eq!(la, lb);
    }

    #[test]
    fn incremental_equals_batch_forward() {
        // Prefill all at once vs token-by-token must give the same final
        // logits (the KV-cache correctness property).
        let prompt = [3usize, 14, 15, 92, 65];
        let mut a = tiny();
        let mut kva = a.new_kv();
        let batch = a.forward(&prompt, &[0, 1, 2, 3, 4], &mut kva);

        let mut b = tiny();
        let mut kvb = b.new_kv();
        let mut last = Matrix::zeros(1, 1);
        for (i, &t) in prompt.iter().enumerate() {
            last = b.forward(&[t], &[i], &mut kvb);
        }
        for (x, y) in batch.row(4).iter().zip(last.row(0)) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn fused_and_unfused_models_agree() {
        let prompt = [1usize, 2, 3, 4];
        let mut a = tiny();
        a.set_fused_moe(true);
        let mut b = tiny();
        b.set_fused_moe(false);
        let mut kva = a.new_kv();
        let mut kvb = b.new_kv();
        let la = a.forward(&prompt, &[0, 1, 2, 3], &mut kva);
        let lb = b.forward(&prompt, &[0, 1, 2, 3], &mut kvb);
        assert!(la.max_abs_diff(&lb) < 1e-3, "{}", la.max_abs_diff(&lb));
    }

    #[test]
    fn stats_collected_per_layer() {
        let mut m = tiny();
        m.enable_stats();
        let mut kv = m.new_kv();
        let _ = m.forward(&[1, 2, 3, 4, 5], &[0, 1, 2, 3, 4], &mut kv);
        let stats = m.take_stats().unwrap();
        // 2 layers x 5 tokens x top-2.
        assert_eq!(stats.total_assignments(), 2 * 5 * 2);
        assert!(m.take_stats().is_none());
    }

    #[test]
    fn dense_first_layers_respected() {
        let mut cfg = tiny_test_model(4, 2);
        cfg.first_k_dense_layers = 1;
        cfg.dense_ffn_dim = 128;
        let mut m = MoeTransformer::new(cfg, 3);
        m.enable_stats();
        let mut kv = m.new_kv();
        let _ = m.forward(&[1, 2], &[0, 1], &mut kv);
        let stats = m.take_stats().unwrap();
        assert_eq!(
            stats.layer(0).iter().sum::<u64>(),
            0,
            "dense layer must not route"
        );
        assert!(stats.layer(1).iter().sum::<u64>() > 0);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn oov_token_rejected() {
        let mut m = tiny();
        let mut kv = m.new_kv();
        let _ = m.forward(&[9999], &[0], &mut kv);
    }

    #[test]
    fn forward_multi_equals_independent_forwards() {
        // Three sequences with different histories decode one token each
        // in a single batched step; results must match per-sequence calls.
        use crate::kvcache::{KvStore, PagedKv};
        let prompts: [&[usize]; 3] = [&[1, 2, 3], &[50, 60], &[7, 8, 9, 10]];
        let next: [usize; 3] = [11, 12, 13];

        // Reference: independent sequences.
        let mut expect_rows = Vec::new();
        for (p, n) in prompts.iter().zip(next) {
            let mut m = tiny();
            let mut kv = m.new_kv();
            let positions: Vec<usize> = (0..p.len()).collect();
            let _ = m.forward(p, &positions, &mut kv);
            let logits = m.forward(&[n], &[p.len()], &mut kv);
            expect_rows.push(logits.row(0).to_vec());
        }

        // Batched: one shared model, per-sequence caches.
        let mut m = tiny();
        let mut kvs: Vec<PagedKv> = Vec::new();
        for p in prompts {
            let mut kv = m.new_kv();
            let positions: Vec<usize> = (0..p.len()).collect();
            let _ = m.forward(p, &positions, &mut kv);
            kvs.push(kv);
        }
        let positions: Vec<usize> = prompts.iter().map(|p| p.len()).collect();
        let mut refs: Vec<&mut dyn KvStore> =
            kvs.iter_mut().map(|kv| kv as &mut dyn KvStore).collect();
        let logits = m.forward_multi(&next, &positions, &mut refs);

        for (r, expect) in expect_rows.iter().enumerate() {
            for (a, b) in logits.row(r).iter().zip(expect) {
                assert!((a - b).abs() < 1e-4, "row {r}: {a} vs {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "one KV cache per token row")]
    fn forward_multi_kv_count_mismatch_panics() {
        use crate::kvcache::KvStore;
        let mut m = tiny();
        let mut kv = m.new_kv();
        let mut refs: Vec<&mut dyn KvStore> = vec![&mut kv];
        let _ = m.forward_multi(&[1, 2], &[0, 0], &mut refs);
    }

    #[test]
    fn quantized_model_close_to_f32() {
        let prompt = [7usize, 8, 9];
        let mut full = tiny();
        let mut kva = full.new_kv();
        let exact = full.forward(&prompt, &[0, 1, 2], &mut kva);

        let cfg = tiny_test_model(8, 2);
        let mut w = ModelWeights::init(&cfg, 7);
        w.quantize(moe_tensor::Precision::F16);
        let mut q = MoeTransformer::with_weights(cfg, w);
        let mut kvb = q.new_kv();
        let approx = q.forward(&prompt, &[0, 1, 2], &mut kvb);

        let diff = exact.max_abs_diff(&approx);
        assert!(diff > 0.0, "fp16 must perturb");
        assert!(diff < 0.1, "fp16 perturbation too large: {diff}");
        // Greedy choice preserved at fp16 for a well-separated argmax.
        let a = moe_tensor::ops::argmax(exact.row(2));
        let b = moe_tensor::ops::argmax(approx.row(2));
        assert_eq!(a, b);
    }
}
