//! The [`Tracer`] handle threaded through the simulator stack.

use crate::sink::TraceSink;
use crate::span::{ArgValue, Category, TraceEvent, TrackId};

/// Collects trace events onto a sink, translating local simulated time
/// into one global monotone timeline.
///
/// Every emitting layer (cost model, serving loop, bench harness) works
/// in its own local clock starting at 0; the tracer adds `base_s` to all
/// timestamps. The harness calls [`Tracer::advance`] after each
/// simulation so consecutive runs tile the timeline instead of stacking
/// at t = 0.
///
/// A tracer built with [`Tracer::disabled`] holds no sink; emission is a
/// no-op and [`Tracer::is_enabled`] lets callers skip building the event
/// payload entirely, keeping the traced hot paths zero-cost when off.
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
    base_s: f64,
    tracks: Vec<(TrackId, String)>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.sink.is_some())
            .field("base_s", &self.base_s)
            .field("tracks", &self.tracks.len())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing at zero cost.
    pub fn disabled() -> Self {
        Self {
            sink: None,
            base_s: 0.0,
            tracks: Vec::new(),
        }
    }

    /// A tracer recording into `sink`.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        Self {
            sink: Some(sink),
            base_s: 0.0,
            tracks: Vec::new(),
        }
    }

    /// Is a sink attached? Callers should skip expensive breakdown
    /// computation when this is false.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Current base offset (global simulated seconds of local t = 0).
    pub fn base_s(&self) -> f64 {
        self.base_s
    }

    /// Shift the base forward by `dur_s` (after finishing a simulation
    /// that spanned `[0, dur_s]` locally).
    pub fn advance(&mut self, dur_s: f64) {
        self.base_s += dur_s.max(0.0);
    }

    /// Register a display name for a track (idempotent; the last name
    /// registered for an id wins).
    pub fn name_track(&mut self, track: TrackId, name: &str) {
        if self.sink.is_none() {
            return;
        }
        if let Some(slot) = self.tracks.iter_mut().find(|(id, _)| *id == track) {
            slot.1 = name.to_string();
        } else {
            self.tracks.push((track, name.to_string()));
        }
    }

    /// Registered `(track, name)` pairs, in registration order.
    pub fn tracks(&self) -> &[(TrackId, String)] {
        &self.tracks
    }

    /// Emit a span at local time `start_s` lasting `dur_s`.
    pub fn span(&mut self, track: TrackId, cat: Category, name: &str, start_s: f64, dur_s: f64) {
        self.span_with(track, cat, name, start_s, dur_s, Vec::new());
    }

    /// Emit a span carrying argument payload.
    pub fn span_with(
        &mut self,
        track: TrackId,
        cat: Category,
        name: &str,
        start_s: f64,
        dur_s: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let base = self.base_s;
        if let Some(sink) = self.sink.as_mut() {
            sink.record(TraceEvent::Span {
                name: name.to_string(),
                cat,
                track,
                start_s: base + start_s,
                dur_s: dur_s.max(0.0),
                args,
            });
        }
    }

    /// Emit an instant marker at local time `t_s`.
    pub fn instant(
        &mut self,
        track: TrackId,
        cat: Category,
        name: &str,
        t_s: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let base = self.base_s;
        if let Some(sink) = self.sink.as_mut() {
            sink.record(TraceEvent::Instant {
                name: name.to_string(),
                cat,
                track,
                t_s: base + t_s,
                args,
            });
        }
    }

    /// Emit a counter sample at local time `t_s`.
    pub fn counter(&mut self, name: &str, t_s: f64, value: f64) {
        let base = self.base_s;
        if let Some(sink) = self.sink.as_mut() {
            sink.record(TraceEvent::Counter {
                name: name.to_string(),
                t_s: base + t_s,
                value,
            });
        }
    }

    /// The retained events, oldest first (empty when disabled).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.sink {
            Some(sink) => sink.snapshot(),
            None => Vec::new(),
        }
    }

    /// Events discarded by a bounded sink.
    pub fn dropped(&self) -> u64 {
        match &self.sink {
            Some(sink) => sink.dropped(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.span(0, Category::Step, "s", 0.0, 1.0);
        t.counter("c", 0.0, 1.0);
        t.name_track(0, "engine");
        assert!(t.snapshot().is_empty());
        assert!(t.tracks().is_empty());
    }

    #[test]
    fn base_offset_applies_to_all_events() {
        let mut t = Tracer::new(Box::new(MemorySink::new()));
        t.span(0, Category::Step, "a", 0.5, 1.0);
        t.advance(10.0);
        t.span(0, Category::Step, "b", 0.5, 1.0);
        let evs = t.snapshot();
        assert_eq!(evs.len(), 2);
        assert!((evs[0].time_s() - 0.5).abs() < 1e-12);
        assert!((evs[1].time_s() - 10.5).abs() < 1e-12);
    }

    #[test]
    fn negative_durations_are_clamped() {
        let mut t = Tracer::new(Box::new(MemorySink::new()));
        t.span(0, Category::Step, "a", 1.0, -2.0);
        match &t.snapshot()[0] {
            TraceEvent::Span { dur_s, .. } => assert!(*dur_s >= 0.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn track_naming_is_idempotent() {
        let mut t = Tracer::new(Box::new(MemorySink::new()));
        t.name_track(3, "first");
        t.name_track(3, "second");
        t.name_track(4, "other");
        assert_eq!(
            t.tracks(),
            &[(3, "second".to_string()), (4, "other".to_string())]
        );
    }
}
