//! The [`Tracer`] handle threaded through the simulator stack.

use crate::sink::TraceSink;
use crate::span::{ArgValue, Category, TraceEvent, TrackId};

/// Collects trace events onto a sink, translating local simulated time
/// into one global monotone timeline.
///
/// Every emitting layer (cost model, serving loop, bench harness) works
/// in its own local clock starting at 0; the tracer adds `base_s` to all
/// timestamps. The harness calls [`Tracer::advance`] after each
/// simulation so consecutive runs tile the timeline instead of stacking
/// at t = 0.
///
/// A tracer built with [`Tracer::disabled`] holds no sink; emission is a
/// no-op and [`Tracer::is_enabled`] lets callers skip building the event
/// payload entirely, keeping the traced hot paths zero-cost when off.
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
    base_s: f64,
    tracks: Vec<(TrackId, String)>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.sink.is_some())
            .field("base_s", &self.base_s)
            .field("tracks", &self.tracks.len())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing at zero cost.
    pub fn disabled() -> Self {
        Self {
            sink: None,
            base_s: 0.0,
            tracks: Vec::new(),
        }
    }

    /// A tracer recording into `sink`.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        Self {
            sink: Some(sink),
            base_s: 0.0,
            tracks: Vec::new(),
        }
    }

    /// Is a sink attached? Callers should skip expensive breakdown
    /// computation when this is false.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Current base offset (global simulated seconds of local t = 0).
    pub fn base_s(&self) -> f64 {
        self.base_s
    }

    /// Shift the base forward by `dur_s` (after finishing a simulation
    /// that spanned `[0, dur_s]` locally).
    pub fn advance(&mut self, dur_s: f64) {
        self.base_s += dur_s.max(0.0);
    }

    /// Register a display name for a track (idempotent; the last name
    /// registered for an id wins).
    pub fn name_track(&mut self, track: TrackId, name: &str) {
        if self.sink.is_none() {
            return;
        }
        if let Some(slot) = self.tracks.iter_mut().find(|(id, _)| *id == track) {
            slot.1 = name.to_string();
        } else {
            self.tracks.push((track, name.to_string()));
        }
    }

    /// Registered `(track, name)` pairs, in registration order.
    pub fn tracks(&self) -> &[(TrackId, String)] {
        &self.tracks
    }

    /// Emit a span at local time `start_s` lasting `dur_s`.
    pub fn span(&mut self, track: TrackId, cat: Category, name: &str, start_s: f64, dur_s: f64) {
        self.span_with(track, cat, name, start_s, dur_s, Vec::new());
    }

    /// Emit a span carrying argument payload.
    pub fn span_with(
        &mut self,
        track: TrackId,
        cat: Category,
        name: &str,
        start_s: f64,
        dur_s: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let base = self.base_s;
        if let Some(sink) = self.sink.as_mut() {
            sink.record(TraceEvent::Span {
                name: name.to_string(),
                cat,
                track,
                start_s: base + start_s,
                dur_s: dur_s.max(0.0),
                args,
            });
        }
    }

    /// Emit an instant marker at local time `t_s`.
    pub fn instant(
        &mut self,
        track: TrackId,
        cat: Category,
        name: &str,
        t_s: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        let base = self.base_s;
        if let Some(sink) = self.sink.as_mut() {
            sink.record(TraceEvent::Instant {
                name: name.to_string(),
                cat,
                track,
                t_s: base + t_s,
                args,
            });
        }
    }

    /// Emit a counter sample at local time `t_s`.
    pub fn counter(&mut self, name: &str, t_s: f64, value: f64) {
        let base = self.base_s;
        if let Some(sink) = self.sink.as_mut() {
            sink.record(TraceEvent::Counter {
                name: name.to_string(),
                t_s: base + t_s,
                value,
            });
        }
    }

    /// Merge a child tracer — recorded on its own local timeline
    /// starting at 0 — into this one.
    ///
    /// Every child event is re-recorded shifted forward by this tracer's
    /// current base, child track names are registered in the child's
    /// registration order (last name wins, as with
    /// [`Tracer::name_track`]), and this tracer's base advances by the
    /// child's accumulated base — exactly as if the child's emissions
    /// had happened inline followed by [`Tracer::advance`].
    ///
    /// This is how parallel drivers compose timelines
    /// deterministically: each task records into its own child tracer,
    /// and the caller absorbs the children **in submission order**, so
    /// the merged trace is independent of the execution schedule.
    pub fn absorb(&mut self, child: Tracer) {
        let child_dur_s = child.base_s;
        for (track, name) in &child.tracks {
            self.name_track(*track, name);
        }
        let base = self.base_s;
        if let Some(sink) = self.sink.as_mut() {
            for event in child.snapshot() {
                sink.record(shift_event(event, base));
            }
        }
        self.base_s += child_dur_s;
    }

    /// The retained events, oldest first (empty when disabled).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.sink {
            Some(sink) => sink.snapshot(),
            None => Vec::new(),
        }
    }

    /// Events discarded by a bounded sink.
    pub fn dropped(&self) -> u64 {
        match &self.sink {
            Some(sink) => sink.dropped(),
            None => 0,
        }
    }
}

/// Shift an event's timestamp forward by `base` seconds.
fn shift_event(event: TraceEvent, base: f64) -> TraceEvent {
    match event {
        TraceEvent::Span {
            name,
            cat,
            track,
            start_s,
            dur_s,
            args,
        } => TraceEvent::Span {
            name,
            cat,
            track,
            start_s: base + start_s,
            dur_s,
            args,
        },
        TraceEvent::Instant {
            name,
            cat,
            track,
            t_s,
            args,
        } => TraceEvent::Instant {
            name,
            cat,
            track,
            t_s: base + t_s,
            args,
        },
        TraceEvent::Counter { name, t_s, value } => TraceEvent::Counter {
            name,
            t_s: base + t_s,
            value,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.span(0, Category::Step, "s", 0.0, 1.0);
        t.counter("c", 0.0, 1.0);
        t.name_track(0, "engine");
        assert!(t.snapshot().is_empty());
        assert!(t.tracks().is_empty());
    }

    #[test]
    fn base_offset_applies_to_all_events() {
        let mut t = Tracer::new(Box::new(MemorySink::new()));
        t.span(0, Category::Step, "a", 0.5, 1.0);
        t.advance(10.0);
        t.span(0, Category::Step, "b", 0.5, 1.0);
        let evs = t.snapshot();
        assert_eq!(evs.len(), 2);
        assert!((evs[0].time_s() - 0.5).abs() < 1e-12);
        assert!((evs[1].time_s() - 10.5).abs() < 1e-12);
    }

    #[test]
    fn negative_durations_are_clamped() {
        let mut t = Tracer::new(Box::new(MemorySink::new()));
        t.span(0, Category::Step, "a", 1.0, -2.0);
        match &t.snapshot()[0] {
            TraceEvent::Span { dur_s, .. } => assert!(*dur_s >= 0.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn absorb_matches_inline_emission() {
        // Inline: emit, advance, emit.
        let mut inline = Tracer::new(Box::new(MemorySink::new()));
        inline.name_track(1, "a");
        inline.span(1, Category::Step, "x", 0.25, 1.0);
        inline.advance(3.0);
        inline.name_track(2, "b");
        inline.span(2, Category::Step, "y", 0.5, 1.0);
        inline.advance(2.0);

        // Composed: the same work split into two child tracers.
        let mut parent = Tracer::new(Box::new(MemorySink::new()));
        let mut c1 = Tracer::new(Box::new(MemorySink::new()));
        c1.name_track(1, "a");
        c1.span(1, Category::Step, "x", 0.25, 1.0);
        c1.advance(3.0);
        let mut c2 = Tracer::new(Box::new(MemorySink::new()));
        c2.name_track(2, "b");
        c2.span(2, Category::Step, "y", 0.5, 1.0);
        c2.advance(2.0);
        parent.absorb(c1);
        parent.absorb(c2);

        assert_eq!(parent.base_s(), inline.base_s());
        assert_eq!(parent.tracks(), inline.tracks());
        let (p, i) = (parent.snapshot(), inline.snapshot());
        assert_eq!(p.len(), i.len());
        for (pe, ie) in p.iter().zip(&i) {
            assert_eq!(pe.time_s().to_bits(), ie.time_s().to_bits());
        }
    }

    #[test]
    fn absorb_into_disabled_parent_still_advances() {
        let mut parent = Tracer::disabled();
        let mut child = Tracer::new(Box::new(MemorySink::new()));
        child.span(0, Category::Step, "x", 0.0, 1.0);
        child.advance(4.0);
        parent.absorb(child);
        assert_eq!(parent.base_s(), 4.0);
        assert!(parent.snapshot().is_empty());
        assert!(parent.tracks().is_empty());
    }

    #[test]
    fn track_naming_is_idempotent() {
        let mut t = Tracer::new(Box::new(MemorySink::new()));
        t.name_track(3, "first");
        t.name_track(3, "second");
        t.name_track(4, "other");
        assert_eq!(
            t.tracks(),
            &[(3, "second".to_string()), (4, "other".to_string())]
        );
    }
}
