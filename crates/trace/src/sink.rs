//! Trace sinks: where recorded events go.

use crate::span::TraceEvent;

/// Destination for trace events.
///
/// Implementations must be deterministic: `snapshot` returns events in
/// the order they were recorded (the ring sink returns the surviving
/// suffix in record order).
///
/// Sinks are `Send` so a [`crate::Tracer`] can be moved into a parallel
/// task (each task records into its own child tracer, later merged in
/// submission order via [`crate::Tracer::absorb`]); they are never
/// shared between threads, so `Sync` is not required.
pub trait TraceSink: Send {
    /// Record one event.
    fn record(&mut self, event: TraceEvent);

    /// The retained events, oldest first.
    fn snapshot(&self) -> Vec<TraceEvent>;

    /// Events discarded by a bounded sink (0 for unbounded sinks).
    fn dropped(&self) -> u64 {
        0
    }
}

/// A sink that discards everything — the default when tracing is off.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}

    fn snapshot(&self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// An unbounded in-memory sink; used for file export.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.clone()
    }
}

/// A bounded ring buffer keeping the most recent `capacity` events.
///
/// Overflow silently evicts the oldest event and increments the dropped
/// counter; the retained window is always the most recent suffix, in
/// record order. Suits always-on tracing of long-running servers where
/// only the recent past matters.
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<TraceEvent>,
    /// Index of the oldest retained event once the ring has wrapped.
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring retaining at most `capacity` events (capacity 0 drops all).
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity.min(4096)),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Category, TrackId};

    fn ev(i: usize) -> TraceEvent {
        TraceEvent::Instant {
            name: format!("e{i}"),
            cat: Category::Sched,
            track: 0 as TrackId,
            t_s: i as f64,
            args: Vec::new(),
        }
    }

    fn names(evs: &[TraceEvent]) -> Vec<String> {
        evs.iter()
            .map(|e| match e {
                TraceEvent::Instant { name, .. } => name.clone(),
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn null_sink_drops_everything_silently() {
        let mut s = NullSink;
        s.record(ev(0));
        assert!(s.snapshot().is_empty());
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn memory_sink_keeps_order() {
        let mut s = MemorySink::new();
        for i in 0..5 {
            s.record(ev(i));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(names(&s.snapshot()), vec!["e0", "e1", "e2", "e3", "e4"]);
    }

    #[test]
    fn ring_under_capacity_keeps_everything() {
        let mut s = RingSink::new(8);
        for i in 0..5 {
            s.record(ev(i));
        }
        assert_eq!(s.dropped(), 0);
        assert_eq!(names(&s.snapshot()), vec!["e0", "e1", "e2", "e3", "e4"]);
    }

    #[test]
    fn ring_overflow_keeps_most_recent_suffix_in_order() {
        let mut s = RingSink::new(3);
        for i in 0..7 {
            s.record(ev(i));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 4);
        assert_eq!(names(&s.snapshot()), vec!["e4", "e5", "e6"]);
    }

    #[test]
    fn ring_exact_capacity_boundary() {
        let mut s = RingSink::new(3);
        for i in 0..3 {
            s.record(ev(i));
        }
        assert_eq!(s.dropped(), 0);
        s.record(ev(3));
        assert_eq!(s.dropped(), 1);
        assert_eq!(names(&s.snapshot()), vec!["e1", "e2", "e3"]);
    }

    #[test]
    fn zero_capacity_ring_counts_drops() {
        let mut s = RingSink::new(0);
        s.record(ev(0));
        s.record(ev(1));
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 2);
    }
}
