//! A deterministic log-linear histogram for latency distributions.

use moe_json::{FromJson, Json, ToJson};

/// Linear sub-buckets per power-of-two octave (≤ ~2.2% relative error).
const SUBS: usize = 32;
/// Smallest representable octave: 2^-40 ≈ 9e-13 (sub-picosecond).
const E_MIN: i32 = -40;
/// Largest representable octave: 2^23 ≈ 8.4e6 (~97 simulated days).
const E_MAX: i32 = 23;
/// Bucket count: one underflow/zero bucket plus the log-linear grid.
const NBUCKETS: usize = ((E_MAX - E_MIN + 1) as usize) * SUBS + 1;

/// A fixed-footprint histogram over positive values (typically seconds).
///
/// Buckets are log-linear — 32 linear sub-buckets per power-of-two
/// octave — so quantile queries are deterministic and accurate to ~2%
/// across twelve decades, with exact `count`, `sum`, `min` and `max`.
/// Values ≤ 0 (or below the smallest octave) land in the underflow
/// bucket; values above the largest octave clamp into the top bucket.
///
/// Everything is integer/bucket arithmetic over explicitly recorded
/// samples: no interpolation on host state, so two identical simulations
/// produce identical histograms and identical rendered percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NBUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build from a sample slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut h = Self::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    fn bucket_index(v: f64) -> usize {
        if !v.is_finite() || v <= 0.0 {
            return 0;
        }
        let e = v.log2().floor();
        let e_i = e as i32;
        if e_i < E_MIN {
            return 0;
        }
        let e_i = e_i.min(E_MAX);
        let frac = v / (e_i as f64).exp2();
        let sub = (((frac - 1.0) * SUBS as f64) as usize).min(SUBS - 1);
        ((e_i - E_MIN) as usize) * SUBS + sub + 1
    }

    /// Midpoint value represented by a bucket.
    fn bucket_value(idx: usize) -> f64 {
        if idx == 0 {
            return 0.0;
        }
        let e = E_MIN + ((idx - 1) / SUBS) as i32;
        let sub = (idx - 1) % SUBS;
        let scale = (e as f64).exp2();
        scale * (1.0 + (sub as f64 + 0.5) / SUBS as f64)
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        let idx = Self::bucket_index(v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += if v.is_finite() { v } else { 0.0 };
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank percentile (`p` in [0, 100]), answered from the
    /// bucket midpoint and clamped to the exact observed [min, max].
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Samples ≤ `v`, answered at bucket resolution: every bucket whose
    /// index is at or below `v`'s bucket counts in full, so the result
    /// can overcount by at most one bucket's width (~3% of `v`). Exact
    /// when `v` sits on a bucket boundary or beyond the observed max.
    pub fn count_le(&self, v: f64) -> u64 {
        let idx = Self::bucket_index(v);
        self.counts[..=idx].iter().sum()
    }

    /// One-line render: `count mean p50 p95 p99 max` (times in ms).
    pub fn render_ms(&self, label: &str) -> String {
        format!(
            "{label:<24} n={:<6} mean {:>9.3} ms  p50 {:>9.3} ms  p95 {:>9.3} ms  p99 {:>9.3} ms  max {:>9.3} ms",
            self.count,
            self.mean() * 1e3,
            self.percentile(50.0) * 1e3,
            self.percentile(95.0) * 1e3,
            self.percentile(99.0) * 1e3,
            self.max() * 1e3,
        )
    }
}

impl ToJson for Histogram {
    /// Sparse image: exact `count`/`sum`/`min`/`max` plus the non-empty
    /// buckets as `[index, count]` pairs in index order, so the size is
    /// proportional to the number of *occupied* buckets, not the grid.
    fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![(i as u64).to_json(), c.to_json()]))
            .collect();
        Json::Obj(vec![
            ("count".to_string(), self.count.to_json()),
            ("sum".to_string(), self.sum.to_json()),
            ("min".to_string(), self.min().to_json()),
            ("max".to_string(), self.max().to_json()),
            ("buckets".to_string(), Json::Arr(buckets)),
        ])
    }
}

impl FromJson for Histogram {
    fn from_json(v: &Json) -> Result<Self, moe_json::Error> {
        let mut h = Histogram::new();
        h.count = moe_json::field(v, "count")?;
        h.sum = moe_json::field(v, "sum")?;
        if h.count > 0 {
            h.min = moe_json::field(v, "min")?;
            h.max = moe_json::field(v, "max")?;
        }
        let buckets: Vec<(u64, u64)> = moe_json::field(v, "buckets")?;
        for (idx, c) in buckets {
            let slot = h
                .counts
                .get_mut(idx as usize)
                .ok_or_else(|| moe_json::Error::new(format!("bucket index {idx} out of range")))?;
            *slot = c;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn mean_min_max_are_exact() {
        let h = Histogram::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(h.mean(), 2.5);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn percentiles_are_close_and_ordered() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        let h = Histogram::from_samples(&samples);
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        let p99 = h.percentile(99.0);
        assert!((p50 - 0.5).abs() / 0.5 < 0.03, "p50 {p50}");
        assert!((p95 - 0.95).abs() / 0.95 < 0.03, "p95 {p95}");
        assert!((p99 - 0.99).abs() / 0.99 < 0.03, "p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max());
    }

    #[test]
    fn percentile_clamps_to_observed_range() {
        let h = Histogram::from_samples(&[0.1]);
        assert_eq!(h.percentile(0.0), 0.1);
        assert_eq!(h.percentile(100.0), 0.1);
    }

    #[test]
    fn tail_heavy_distribution_separates_p50_from_p99() {
        let mut samples = vec![0.01; 98];
        samples.push(1.0);
        samples.push(2.0);
        let h = Histogram::from_samples(&samples);
        assert!(h.percentile(50.0) < 0.02);
        assert!(h.percentile(99.0) > 0.9);
    }

    #[test]
    fn nonpositive_and_nonfinite_samples_hit_underflow() {
        let h = Histogram::from_samples(&[0.0, -1.0, f64::NAN, 0.5]);
        assert_eq!(h.count(), 4);
        // Underflow bucket reports 0 (clamped to observed min of -1,
        // which is below bucket 0's midpoint 0).
        assert!(h.percentile(25.0) <= 0.0);
    }

    #[test]
    fn merge_matches_union() {
        let a = Histogram::from_samples(&[0.1, 0.2, 0.3]);
        let b = Histogram::from_samples(&[0.4, 0.5]);
        let mut m = a.clone();
        m.merge(&b);
        let u = Histogram::from_samples(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        assert_eq!(m, u);
    }

    #[test]
    fn extreme_magnitudes_clamp_into_grid() {
        let h = Histogram::from_samples(&[1e-20, 1e9]);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0) <= 1e9);
        assert!(h.percentile(100.0) > 1e6);
    }

    #[test]
    fn count_le_brackets_the_exact_count() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-3).collect();
        let h = Histogram::from_samples(&samples);
        for v in [0.1, 0.25, 0.5, 0.9] {
            let exact = samples.iter().filter(|&&s| s <= v).count() as u64;
            let got = h.count_le(v);
            // Never undercounts; overcounts by at most one bucket (~3%).
            assert!(got >= exact, "count_le({v}) = {got} < exact {exact}");
            assert!(
                got as f64 <= exact as f64 * 1.05 + 1.0,
                "count_le({v}) = {got} vs exact {exact}"
            );
        }
        assert_eq!(h.count_le(2.0), 1000, "beyond max counts everything");
        assert_eq!(h.count_le(0.0), 0, "underflow bucket only");
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let h = Histogram::from_samples(&[1e-6, 0.003, 0.01, 0.01, 7.5]);
        let json = moe_json::to_string(&h);
        let back: Histogram = moe_json::from_str(&json).expect("histogram json parses");
        assert_eq!(h, back);
        assert_eq!(json, moe_json::to_string(&back));

        let empty = Histogram::new();
        let back: Histogram = moe_json::from_str(&moe_json::to_string(&empty)).unwrap();
        assert_eq!(empty, back);
        assert_eq!(back.percentile(50.0), 0.0);
    }

    #[test]
    fn render_contains_percentiles() {
        let h = Histogram::from_samples(&[0.001, 0.002]);
        let line = h.render_ms("ttft");
        assert!(line.contains("ttft"));
        assert!(line.contains("p99"));
    }
}
