//! Chrome-trace (`chrome://tracing` / Perfetto) JSON export.

use crate::span::{ArgValue, TraceEvent, TrackId};
use moe_json::Json;

/// Single simulated process id used for every lane.
const PID: i128 = 0;

fn arg_json(v: &ArgValue) -> Json {
    match v {
        ArgValue::Int(i) => Json::Int(*i as i128),
        ArgValue::Float(f) => Json::Float(*f),
        ArgValue::Str(s) => Json::Str(s.clone()),
    }
}

fn args_obj(args: &[(&'static str, ArgValue)]) -> Json {
    Json::Obj(
        args.iter()
            .map(|(k, v)| ((*k).to_string(), arg_json(v)))
            .collect(),
    )
}

fn us(t_s: f64) -> Json {
    Json::Float(t_s * 1e6)
}

fn base_fields(name: &str, tid: TrackId, ph: &str, t_s: f64) -> Vec<(String, Json)> {
    vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("ph".to_string(), Json::Str(ph.to_string())),
        ("ts".to_string(), us(t_s)),
        ("pid".to_string(), Json::Int(PID)),
        ("tid".to_string(), Json::Int(tid as i128)),
    ]
}

fn thread_name_meta(tid: TrackId, name: &str) -> Json {
    let mut fields = base_fields("thread_name", tid, "M", 0.0);
    fields.retain(|(k, _)| k != "ts");
    fields.push((
        "args".to_string(),
        Json::Obj(vec![("name".to_string(), Json::Str(name.to_string()))]),
    ));
    Json::Obj(fields)
}

/// Render events as a Chrome-trace JSON document.
///
/// The output is the standard "JSON object format": a `traceEvents`
/// array of `ph: "X"` complete events (spans), `ph: "i"` instants,
/// `ph: "C"` counters, plus `ph: "M"` metadata rows naming each track
/// from `tracks`. Timestamps convert from simulated seconds to the
/// microseconds Chrome expects. Load the file at `chrome://tracing` or
/// <https://ui.perfetto.dev>.
///
/// Output is byte-deterministic: events render in slice order and all
/// numbers go through `moe-json`'s shortest-round-trip float printer.
pub fn chrome_trace_json(events: &[TraceEvent], tracks: &[(TrackId, String)]) -> String {
    let mut rows: Vec<Json> = Vec::with_capacity(events.len() + tracks.len() + 1);
    rows.push(Json::Obj(vec![
        ("name".to_string(), Json::Str("process_name".to_string())),
        ("ph".to_string(), Json::Str("M".to_string())),
        ("pid".to_string(), Json::Int(PID)),
        ("tid".to_string(), Json::Int(0)),
        (
            "args".to_string(),
            Json::Obj(vec![(
                "name".to_string(),
                Json::Str("moe-sim (simulated time)".to_string()),
            )]),
        ),
    ]));
    for (tid, name) in tracks {
        rows.push(thread_name_meta(*tid, name));
    }
    for ev in events {
        rows.push(match ev {
            TraceEvent::Span {
                name,
                cat,
                track,
                start_s,
                dur_s,
                args,
            } => {
                let mut fields = base_fields(name, *track, "X", *start_s);
                fields.insert(2, ("cat".to_string(), Json::Str(cat.name().to_string())));
                fields.push(("dur".to_string(), us(*dur_s)));
                if !args.is_empty() {
                    fields.push(("args".to_string(), args_obj(args)));
                }
                Json::Obj(fields)
            }
            TraceEvent::Instant {
                name,
                cat,
                track,
                t_s,
                args,
            } => {
                let mut fields = base_fields(name, *track, "i", *t_s);
                fields.insert(2, ("cat".to_string(), Json::Str(cat.name().to_string())));
                fields.push(("s".to_string(), Json::Str("t".to_string())));
                if !args.is_empty() {
                    fields.push(("args".to_string(), args_obj(args)));
                }
                Json::Obj(fields)
            }
            TraceEvent::Counter { name, t_s, value } => {
                let mut fields = base_fields(name, 0, "C", *t_s);
                fields.push((
                    "args".to_string(),
                    Json::Obj(vec![(name.clone(), Json::Float(*value))]),
                ));
                Json::Obj(fields)
            }
        });
    }
    let doc = Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(rows)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ]);
    doc.render_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Category;

    fn span(name: &str, track: TrackId, start_s: f64, dur_s: f64) -> TraceEvent {
        TraceEvent::Span {
            name: name.to_string(),
            cat: Category::Step,
            track,
            start_s,
            dur_s,
            args: Vec::new(),
        }
    }

    #[test]
    fn export_is_valid_json_with_expected_shape() {
        let events = vec![
            span("prefill", 0, 0.0, 0.5),
            TraceEvent::Instant {
                name: "admit".into(),
                cat: Category::Sched,
                track: 1,
                t_s: 0.25,
                args: vec![("req", 3usize.into())],
            },
            TraceEvent::Counter {
                name: "kv-blocks-used".into(),
                t_s: 0.5,
                value: 12.0,
            },
        ];
        let tracks = vec![(0, "engine".to_string()), (1, "scheduler".to_string())];
        let out = chrome_trace_json(&events, &tracks);
        let doc = moe_json::parse(&out).expect("valid json");
        let evs = match doc.get("traceEvents") {
            Some(Json::Arr(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        // process_name + 2 thread_name + 3 events
        assert_eq!(evs.len(), 6);
        let span_row = &evs[3];
        assert_eq!(span_row.get("ph"), Some(&Json::Str("X".into())));
        assert_eq!(span_row.get("cat"), Some(&Json::Str("step".into())));
        assert_eq!(span_row.get("ts"), Some(&Json::Float(0.0)));
        assert_eq!(span_row.get("dur"), Some(&Json::Float(500000.0)));
        let inst = &evs[4];
        assert_eq!(inst.get("ph"), Some(&Json::Str("i".into())));
        assert_eq!(
            inst.get("args").and_then(|a| a.get("req")),
            Some(&Json::Int(3))
        );
        let ctr = &evs[5];
        assert_eq!(ctr.get("ph"), Some(&Json::Str("C".into())));
        assert_eq!(
            ctr.get("args").and_then(|a| a.get("kv-blocks-used")),
            Some(&Json::Float(12.0))
        );
    }

    #[test]
    fn track_names_become_thread_metadata() {
        let out = chrome_trace_json(&[], &[(7, "req 7".to_string())]);
        let doc = moe_json::parse(&out).expect("valid json");
        let evs = match doc.get("traceEvents") {
            Some(Json::Arr(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let meta = &evs[1];
        assert_eq!(meta.get("ph"), Some(&Json::Str("M".into())));
        assert_eq!(meta.get("tid"), Some(&Json::Int(7)));
        assert_eq!(
            meta.get("args").and_then(|a| a.get("name")),
            Some(&Json::Str("req 7".into()))
        );
    }

    #[test]
    fn names_with_specials_are_escaped() {
        let events = vec![span("a \"quoted\"\nname\t\\", 0, 0.0, 1.0)];
        let out = chrome_trace_json(&events, &[]);
        // Raw control characters must not survive into the output.
        assert!(!out.contains('\n'));
        assert!(!out.contains('\t'));
        let doc = moe_json::parse(&out).expect("escaped output reparses");
        let evs = match doc.get("traceEvents") {
            Some(Json::Arr(a)) => a,
            other => panic!("traceEvents missing: {other:?}"),
        };
        assert_eq!(
            evs[1].get("name"),
            Some(&Json::Str("a \"quoted\"\nname\t\\".into()))
        );
    }

    #[test]
    fn export_is_deterministic() {
        let events = vec![span("s", 0, 0.125, 0.25)];
        let tracks = vec![(0, "engine".to_string())];
        let a = chrome_trace_json(&events, &tracks);
        let b = chrome_trace_json(&events, &tracks);
        assert_eq!(a, b);
    }
}
