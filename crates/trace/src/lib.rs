//! # moe-trace
//!
//! Structured tracing for the simulator stack. Every layer of the
//! pipeline — the `moe-gpusim` cost model, the `moe-runtime` serving
//! loop, and the `moe-bench` experiment harness — can emit **spans**
//! (named intervals on the *simulated* clock) and **instant events**
//! (scheduler decisions, preemptions) into a [`Tracer`]. The collected
//! events render three ways:
//!
//! * a Chrome-trace JSON file ([`chrome_trace_json`]) loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev),
//! * a human text flame summary ([`flame_summary`]) aggregating time by
//!   span path, and
//! * deterministic latency [`Histogram`]s (p50/p95/p99) that back the
//!   runtime's latency reporting.
//!
//! ## Clocks
//!
//! Timestamps are **simulated seconds**, never the host wall clock: the
//! values come from the discrete-event queue and the roofline cost model,
//! so two runs with the same seed produce byte-identical traces (the
//! `no-wall-clock` moe-lint rule stays trivially satisfied). The
//! [`Tracer`] carries a *base offset* so that many independent simulations
//! (each starting at its own local t = 0) compose into one monotone
//! timeline — the bench harness advances the base after every sweep point.
//!
//! ## Cost when disabled
//!
//! A disabled tracer ([`Tracer::disabled`]) records nothing and callers
//! are expected to branch on [`Tracer::is_enabled`] before computing any
//! breakdown, so the hot path pays one branch. Sinks implement
//! [`TraceSink`]; the bounded [`RingSink`] keeps the last *N* events for
//! tests and long-running servers, [`MemorySink`] keeps everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod flame;
mod hist;
mod sink;
mod span;
mod tracer;

pub use chrome::chrome_trace_json;
pub use flame::{flame_summary, timeline_coverage};
pub use hist::Histogram;
pub use sink::{MemorySink, NullSink, RingSink, TraceSink};
pub use span::{
    ArgValue, Category, TraceEvent, TrackId, BENCH_TRACK, ENGINE_TRACK, REQUEST_TRACK_BASE,
    SCHED_TRACK,
};
pub use tracer::Tracer;
