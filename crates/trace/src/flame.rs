//! Flamegraph-style text rendering and timeline coverage checks.

use crate::span::{TraceEvent, TrackId};

/// Tolerance when deciding whether one span nests inside another; sums
/// of per-layer float durations can disagree with the enclosing span by
/// a few ulps.
const NEST_EPS_S: f64 = 1e-9;

#[derive(Debug)]
struct Node {
    name: String,
    total_s: f64,
    count: u64,
    children: Vec<usize>,
}

#[derive(Debug, Default)]
struct Arena {
    nodes: Vec<Node>,
    roots: Vec<usize>,
}

impl Arena {
    /// Find-or-create a child named `name` under `parent` (`None` = root).
    fn child(&mut self, parent: Option<usize>, name: &str) -> usize {
        let list = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = list.iter().find(|&&idx| self.nodes[idx].name == name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_string(),
            total_s: 0.0,
            count: 0,
            children: Vec::new(),
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    start_s: f64,
    end_s: f64,
}

fn track_spans(events: &[TraceEvent], track: TrackId) -> Vec<(Interval, &str)> {
    let mut spans: Vec<(Interval, &str)> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Span {
                name,
                track: t,
                start_s,
                dur_s,
                ..
            } if *t == track => Some((
                Interval {
                    start_s: *start_s,
                    end_s: *start_s + *dur_s,
                },
                name.as_str(),
            )),
            _ => None,
        })
        .collect();
    // Start ascending; at equal starts the longer span first so parents
    // precede the children they contain. Stable sort preserves record
    // order among exact ties, keeping the output deterministic.
    spans.sort_by(|a, b| {
        a.0.start_s
            .total_cmp(&b.0.start_s)
            .then(b.0.end_s.total_cmp(&a.0.end_s))
    });
    spans
}

/// Length of the union of a set of intervals.
fn union_len(mut iv: Vec<Interval>) -> f64 {
    iv.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
    let mut total = 0.0;
    let mut cur: Option<Interval> = None;
    for i in iv {
        match cur {
            Some(ref mut c) if i.start_s <= c.end_s => {
                if i.end_s > c.end_s {
                    c.end_s = i.end_s;
                }
            }
            Some(c) => {
                total += (c.end_s - c.start_s).max(0.0);
                cur = Some(i);
            }
            None => cur = Some(i),
        }
    }
    if let Some(c) = cur {
        total += (c.end_s - c.start_s).max(0.0);
    }
    total
}

/// Fraction of a track's simulated extent covered by its spans.
///
/// The extent is `[earliest span start, latest span end]` on `track`;
/// the return value is the length of the union of all span intervals
/// divided by that extent, in `[0, 1]`. Returns 0 when the track has no
/// spans (or zero extent), so it doubles as a "did anything get traced
/// here" check in tests.
pub fn timeline_coverage(events: &[TraceEvent], track: TrackId) -> f64 {
    let spans = track_spans(events, track);
    if spans.is_empty() {
        return 0.0;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (iv, _) in &spans {
        if iv.start_s < lo {
            lo = iv.start_s;
        }
        if iv.end_s > hi {
            hi = iv.end_s;
        }
    }
    let extent = hi - lo;
    if !extent.is_finite() || extent <= 0.0 {
        return 0.0;
    }
    (union_len(spans.iter().map(|(iv, _)| *iv).collect()) / extent).clamp(0.0, 1.0)
}

/// Build the aggregation tree for one track by time containment.
fn build_tree(spans: &[(Interval, &str)]) -> Arena {
    let mut arena = Arena::default();
    // Stack of (end time, node index) for currently-open ancestors.
    let mut stack: Vec<(f64, usize)> = Vec::new();
    for (iv, name) in spans {
        while let Some(&(end_s, _)) = stack.last() {
            if iv.start_s >= end_s - NEST_EPS_S {
                stack.pop();
            } else {
                break;
            }
        }
        let parent = stack.last().map(|&(_, idx)| idx);
        let idx = arena.child(parent, name);
        arena.nodes[idx].total_s += (iv.end_s - iv.start_s).max(0.0);
        arena.nodes[idx].count += 1;
        stack.push((iv.end_s, idx));
    }
    arena
}

fn render_node(arena: &Arena, idx: usize, depth: usize, extent_s: f64, out: &mut String) {
    let node = &arena.nodes[idx];
    let indent = "  ".repeat(depth + 1);
    let label = format!("{indent}{}", node.name);
    let pct = if extent_s > 0.0 {
        100.0 * node.total_s / extent_s
    } else {
        0.0
    };
    out.push_str(&format!(
        "{label:<40} {:>8}x {:>14.6} s {:>6.1}%\n",
        node.count, node.total_s, pct
    ));
    for &c in &node.children {
        render_node(arena, c, depth + 1, extent_s, out);
    }
}

/// Render a per-track, flamegraph-style text summary of the trace.
///
/// Spans on each track are nested by time containment and aggregated by
/// path (same name under the same parent merges), then printed indented
/// with call counts, total simulated seconds, and percentage of the
/// track's extent. `tracks` supplies display names (unnamed tracks print
/// their numeric id). Instant events are tallied per track.
pub fn flame_summary(events: &[TraceEvent], tracks: &[(TrackId, String)]) -> String {
    let mut ids: Vec<TrackId> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Span { track, .. } | TraceEvent::Instant { track, .. } => Some(*track),
            TraceEvent::Counter { .. } => None,
        })
        .collect();
    ids.sort_unstable();
    ids.dedup();
    let mut out = String::new();
    if ids.is_empty() {
        out.push_str("(no trace events)\n");
        return out;
    }
    for track in ids {
        let name = tracks
            .iter()
            .find(|(id, _)| *id == track)
            .map(|(_, n)| n.as_str());
        match name {
            Some(n) => out.push_str(&format!("track {track} — {n}\n")),
            None => out.push_str(&format!("track {track}\n")),
        }
        let spans = track_spans(events, track);
        if spans.is_empty() {
            out.push_str("  (no spans)\n");
        } else {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (iv, _) in &spans {
                if iv.start_s < lo {
                    lo = iv.start_s;
                }
                if iv.end_s > hi {
                    hi = iv.end_s;
                }
            }
            let extent = (hi - lo).max(0.0);
            out.push_str(&format!(
                "  extent {extent:.6} s, coverage {:.1}%\n",
                100.0 * timeline_coverage(events, track)
            ));
            let arena = build_tree(&spans);
            for &root in &arena.roots {
                render_node(&arena, root, 0, extent, &mut out);
            }
        }
        let instants = events
            .iter()
            .filter(|ev| matches!(ev, TraceEvent::Instant { track: t, .. } if *t == track))
            .count();
        if instants > 0 {
            out.push_str(&format!("  {instants} instant event(s)\n"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Category;

    fn span(name: &str, track: TrackId, start_s: f64, dur_s: f64) -> TraceEvent {
        TraceEvent::Span {
            name: name.to_string(),
            cat: Category::Step,
            track,
            start_s,
            dur_s,
            args: Vec::new(),
        }
    }

    #[test]
    fn coverage_of_disjoint_spans() {
        let evs = vec![span("a", 0, 0.0, 1.0), span("b", 0, 2.0, 1.0)];
        let c = timeline_coverage(&evs, 0);
        assert!((c - 2.0 / 3.0).abs() < 1e-12, "coverage {c}");
    }

    #[test]
    fn coverage_counts_overlap_once() {
        let evs = vec![span("a", 0, 0.0, 2.0), span("b", 0, 1.0, 2.0)];
        let c = timeline_coverage(&evs, 0);
        assert!((c - 1.0).abs() < 1e-12, "coverage {c}");
    }

    #[test]
    fn coverage_empty_track_is_zero() {
        let evs = vec![span("a", 0, 0.0, 1.0)];
        assert_eq!(timeline_coverage(&evs, 5), 0.0);
    }

    #[test]
    fn nesting_follows_time_containment() {
        let evs = vec![
            span("step", 0, 0.0, 10.0),
            span("attn", 0, 0.0, 4.0),
            span("ffn", 0, 4.0, 6.0),
            span("step", 0, 10.0, 10.0),
            span("attn", 0, 10.0, 5.0),
        ];
        let out = flame_summary(&evs, &[(0, "engine".to_string())]);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("engine"));
        // step aggregated at depth 1, attn/ffn at depth 2.
        let step = lines.iter().find(|l| l.contains("step")).expect("step row");
        assert!(step.trim_start().starts_with("step"));
        assert!(step.contains("2x"));
        let attn = lines.iter().find(|l| l.contains("attn")).expect("attn row");
        assert!(attn.starts_with("    attn"));
        assert!(attn.contains("2x"));
        let ffn = lines.iter().find(|l| l.contains("ffn")).expect("ffn row");
        assert!(ffn.starts_with("    ffn"));
        assert!(ffn.contains("1x"));
    }

    #[test]
    fn sibling_after_parent_end_is_a_new_root() {
        let evs = vec![span("a", 0, 0.0, 1.0), span("b", 0, 1.0, 1.0)];
        let out = flame_summary(&evs, &[]);
        let a = out.lines().find(|l| l.contains("a ")).expect("a row");
        let b = out.lines().find(|l| l.contains("b ")).expect("b row");
        // Both are top-level (same indent).
        assert_eq!(
            a.len() - a.trim_start().len(),
            b.len() - b.trim_start().len()
        );
    }

    #[test]
    fn instants_are_tallied() {
        let evs = vec![
            span("a", 1, 0.0, 1.0),
            TraceEvent::Instant {
                name: "admit".into(),
                cat: Category::Sched,
                track: 1,
                t_s: 0.5,
                args: Vec::new(),
            },
        ];
        let out = flame_summary(&evs, &[]);
        assert!(out.contains("1 instant event(s)"));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert!(flame_summary(&[], &[]).contains("no trace events"));
    }
}
