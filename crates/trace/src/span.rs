//! The event model: spans, instants and counters on the simulated clock.

/// Identifier of one horizontal lane in the trace (a Chrome-trace `tid`).
///
/// By convention in this workspace: track 0 is the engine step timeline,
/// track 1 the scheduler decision lane, track 2 the bench harness, and
/// tracks `REQUEST_TRACK_BASE + id` hold per-request span chains.
pub type TrackId = u32;

/// Track carrying engine step spans (prefill/decode and their kernels).
pub const ENGINE_TRACK: TrackId = 0;

/// Track carrying scheduler decision instants.
pub const SCHED_TRACK: TrackId = 1;

/// Track carrying bench-harness experiment/sweep grouping spans.
pub const BENCH_TRACK: TrackId = 2;

/// First track id used for per-request lanes.
pub const REQUEST_TRACK_BASE: TrackId = 16;

/// Coarse classification of an event, exported as the Chrome-trace
/// category (`cat`) so the viewer can filter by subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Engine step or phase on the simulated device (prefill, decode).
    Step,
    /// A kernel-level component: GEMM, attention core, weight streaming.
    Kernel,
    /// Collective communication: all-reduce, all-to-all, P2P hops.
    Comm,
    /// Scheduler decision: admit, preempt, finish.
    Sched,
    /// Per-request lifecycle span.
    Request,
    /// Memory accounting (KV-block counters).
    Mem,
    /// Experiment-harness grouping span.
    Bench,
}

impl Category {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Category::Step => "step",
            Category::Kernel => "kernel",
            Category::Comm => "comm",
            Category::Sched => "sched",
            Category::Request => "request",
            Category::Mem => "mem",
            Category::Bench => "bench",
        }
    }
}

/// An argument value attached to an event (rendered into Chrome `args`).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Integer payload (token counts, ids).
    Int(i64),
    /// Float payload (seconds, bytes as f64).
    Float(f64),
    /// String payload.
    Str(String),
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::Int(i64::from(v))
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One recorded trace event on the simulated timeline.
///
/// Times are absolute simulated seconds (the [`crate::Tracer`] adds its
/// base offset before the event reaches a sink).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A named interval `[start_s, start_s + dur_s]` on `track`. Spans on
    /// the same track nest by time containment (Chrome `ph: "X"`).
    Span {
        /// Display name ("prefill", "moe-ffn", "req 3", ...).
        name: String,
        /// Subsystem category.
        cat: Category,
        /// Lane the span renders on.
        track: TrackId,
        /// Absolute start, simulated seconds.
        start_s: f64,
        /// Duration, simulated seconds (non-negative).
        dur_s: f64,
        /// Optional key/value payload.
        args: Vec<(&'static str, ArgValue)>,
    },
    /// A point-in-time marker (Chrome `ph: "i"`).
    Instant {
        /// Display name ("admit", "preempt", ...).
        name: String,
        /// Subsystem category.
        cat: Category,
        /// Lane the marker renders on.
        track: TrackId,
        /// Absolute time, simulated seconds.
        t_s: f64,
        /// Optional key/value payload.
        args: Vec<(&'static str, ArgValue)>,
    },
    /// A sampled counter series value (Chrome `ph: "C"`).
    Counter {
        /// Series name ("kv-blocks-used", ...).
        name: String,
        /// Absolute sample time, simulated seconds.
        t_s: f64,
        /// Sampled value.
        value: f64,
    },
}

impl TraceEvent {
    /// The event's timestamp (start time for spans).
    pub fn time_s(&self) -> f64 {
        match self {
            TraceEvent::Span { start_s, .. } => *start_s,
            TraceEvent::Instant { t_s, .. } => *t_s,
            TraceEvent::Counter { t_s, .. } => *t_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_names_are_stable() {
        assert_eq!(Category::Step.name(), "step");
        assert_eq!(Category::Bench.name(), "bench");
    }

    #[test]
    fn arg_conversions() {
        assert_eq!(ArgValue::from(3usize), ArgValue::Int(3));
        assert_eq!(ArgValue::from("x"), ArgValue::Str("x".into()));
        assert!(matches!(ArgValue::from(1.5f64), ArgValue::Float(_)));
    }

    #[test]
    fn event_time_accessor() {
        let ev = TraceEvent::Counter {
            name: "c".into(),
            t_s: 2.5,
            value: 1.0,
        };
        assert!((ev.time_s() - 2.5).abs() < 1e-12);
    }
}
