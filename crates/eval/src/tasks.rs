//! Task-suite definitions mirroring the paper's evaluation sets:
//! the lm-eval language-understanding tasks (Section 8.1) and the
//! VLMEvalKit multimodal tasks (Section 8.2).
//!
//! Each task carries a difficulty (how much capability a model needs to
//! beat chance decisively) and a chance floor (1/num_choices for
//! multiple-choice). Synthetic items are generated deterministically per
//! (task, index).

use moe_json::ToJson;

/// Modality of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, ToJson)]
pub enum TaskKind {
    Language,
    VisionLanguage,
}

/// One benchmark task. (Serialize-only: names are static literals.)
#[derive(Debug, Clone, PartialEq, ToJson)]
pub struct Task {
    pub name: &'static str,
    pub kind: TaskKind,
    /// Capability level (0–1 scale) at which models score halfway between
    /// chance and ceiling.
    pub difficulty: f64,
    /// Random-guess accuracy floor.
    pub chance: f64,
    /// Items evaluated per run.
    pub num_items: usize,
}

/// The language-understanding suite of Section 8.1 (lm-eval tasks).
pub fn lm_task_suite() -> Vec<Task> {
    use TaskKind::Language as L;
    vec![
        Task {
            name: "ARC-c",
            kind: L,
            difficulty: 0.62,
            chance: 0.25,
            num_items: 1172,
        },
        Task {
            name: "ARC-e",
            kind: L,
            difficulty: 0.38,
            chance: 0.25,
            num_items: 2376,
        },
        Task {
            name: "BoolQ",
            kind: L,
            difficulty: 0.45,
            chance: 0.50,
            num_items: 3270,
        },
        Task {
            name: "HellaSwag",
            kind: L,
            difficulty: 0.50,
            chance: 0.25,
            num_items: 10_042,
        },
        Task {
            name: "MMLU",
            kind: L,
            difficulty: 0.66,
            chance: 0.25,
            num_items: 14_042,
        },
        Task {
            name: "OpenBookQA",
            kind: L,
            difficulty: 0.55,
            chance: 0.25,
            num_items: 500,
        },
        Task {
            name: "RTE",
            kind: L,
            difficulty: 0.48,
            chance: 0.50,
            num_items: 277,
        },
        Task {
            name: "WinoGrande",
            kind: L,
            difficulty: 0.52,
            chance: 0.50,
            num_items: 1267,
        },
    ]
}

/// The vision-language suite of Section 8.2 (VLMEvalKit tasks).
pub fn vlm_task_suite() -> Vec<Task> {
    use TaskKind::VisionLanguage as V;
    vec![
        Task {
            name: "MME",
            kind: V,
            difficulty: 0.50,
            chance: 0.50,
            num_items: 2374,
        },
        Task {
            name: "TextVQA",
            kind: V,
            difficulty: 0.55,
            chance: 0.05,
            num_items: 5000,
        },
        Task {
            name: "AI2D",
            kind: V,
            difficulty: 0.58,
            chance: 0.25,
            num_items: 3088,
        },
        Task {
            name: "DocVQA",
            kind: V,
            difficulty: 0.60,
            chance: 0.05,
            num_items: 5349,
        },
        Task {
            name: "MMMU",
            kind: V,
            difficulty: 0.75,
            chance: 0.25,
            num_items: 900,
        },
        Task {
            name: "InfoVQA",
            kind: V,
            difficulty: 0.68,
            chance: 0.05,
            num_items: 2801,
        },
        Task {
            name: "RealWorldQA",
            kind: V,
            difficulty: 0.62,
            chance: 0.25,
            num_items: 765,
        },
        Task {
            name: "ScienceQA",
            kind: V,
            difficulty: 0.52,
            chance: 0.25,
            num_items: 4241,
        },
    ]
}

/// A deterministic synthetic item: a per-(task, index) difficulty jitter
/// in [-0.15, 0.15] around the task difficulty, standing in for item-level
/// variation.
pub fn item_difficulty(task: &Task, index: usize) -> f64 {
    let seed = moe_tensor::rng::derive_seed(
        task.name
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64)),
        index as u64,
    );
    let unit = (seed % 10_000) as f64 / 10_000.0; // [0,1)
    (task.difficulty + (unit - 0.5) * 0.30).clamp(0.01, 0.99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_task_lists() {
        let lm: Vec<&str> = lm_task_suite().iter().map(|t| t.name).collect();
        for name in [
            "ARC-c",
            "ARC-e",
            "BoolQ",
            "HellaSwag",
            "MMLU",
            "OpenBookQA",
            "RTE",
            "WinoGrande",
        ] {
            assert!(lm.contains(&name), "missing {name}");
        }
        let vlm: Vec<&str> = vlm_task_suite().iter().map(|t| t.name).collect();
        for name in [
            "MME",
            "TextVQA",
            "AI2D",
            "DocVQA",
            "MMMU",
            "InfoVQA",
            "RealWorldQA",
            "ScienceQA",
        ] {
            assert!(vlm.contains(&name), "missing {name}");
        }
    }

    #[test]
    fn kinds_are_consistent() {
        assert!(lm_task_suite().iter().all(|t| t.kind == TaskKind::Language));
        assert!(vlm_task_suite()
            .iter()
            .all(|t| t.kind == TaskKind::VisionLanguage));
    }

    #[test]
    fn chance_floors_valid() {
        for t in lm_task_suite().into_iter().chain(vlm_task_suite()) {
            assert!((0.0..1.0).contains(&t.chance), "{}", t.name);
            assert!((0.0..1.0).contains(&t.difficulty), "{}", t.name);
            assert!(t.num_items > 0);
        }
    }

    #[test]
    fn item_difficulty_deterministic_and_jittered() {
        let t = &lm_task_suite()[0];
        assert_eq!(item_difficulty(t, 3), item_difficulty(t, 3));
        let spread: Vec<f64> = (0..50).map(|i| item_difficulty(t, i)).collect();
        let min = spread.iter().cloned().fold(1.0, f64::min);
        let max = spread.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.1, "jitter too small: {min}..{max}");
        assert!(min >= t.difficulty - 0.16 && max <= t.difficulty + 0.16);
    }

    #[test]
    fn mmlu_harder_than_arc_easy() {
        let lm = lm_task_suite();
        let mmlu = lm.iter().find(|t| t.name == "MMLU").unwrap();
        let arce = lm.iter().find(|t| t.name == "ARC-e").unwrap();
        assert!(mmlu.difficulty > arce.difficulty);
    }
}
