//! The evaluation harness: runs a task suite against a capability profile,
//! scoring synthetic items deterministically, and aggregates per-task and
//! average accuracies — the numbers Figures 17/18 plot on their x-axes.
//!
//! Per-item model: a model of capability `c` answers an item of difficulty
//! `d` correctly with probability
//!
//! ```text
//! p = chance + (1 - chance) * sigmoid(8 * (c - d))
//! ```
//!
//! (a 2-parameter IRT curve with the task's guess floor). The Bernoulli
//! draw is seeded by (model, task, item), so a report is bit-reproducible
//! and *monotone*: a strictly more capable model never scores worse in
//! expectation.

use moe_json::ToJson;
use moe_tensor::rng::{derive_seed, rng_from_seed};

use crate::profiles::CapabilityProfile;
use crate::tasks::{item_difficulty, Task, TaskKind};

/// Accuracy on one task. (Serialize-only: task names are static.)
#[derive(Debug, Clone, PartialEq, ToJson)]
pub struct TaskResult {
    pub task: &'static str,
    pub kind: TaskKind,
    pub items: usize,
    pub correct: usize,
}

impl TaskResult {
    pub fn accuracy(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.correct as f64 / self.items as f64
        }
    }
}

/// A full evaluation report for one model.
#[derive(Debug, Clone, PartialEq, ToJson)]
pub struct EvalReport {
    pub model: String,
    pub results: Vec<TaskResult>,
}

impl EvalReport {
    /// Unweighted mean accuracy across tasks (how the paper averages).
    pub fn average_accuracy(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.results.iter().map(|r| r.accuracy()).sum::<f64>() / self.results.len() as f64
        }
    }

    pub fn task(&self, name: &str) -> Option<&TaskResult> {
        self.results.iter().find(|r| r.task == name)
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Slip probability: even far above an item's difficulty a model misses
/// sometimes (formatting, ambiguity), keeping ceilings below 100% — the
/// 4-parameter-IRT upper asymptote.
pub const SLIP: f64 = 0.12;

/// Expected accuracy of capability `c` on an item of difficulty `d` with
/// guess floor `chance`.
pub fn expected_item_accuracy(c: f64, d: f64, chance: f64) -> f64 {
    chance + (1.0 - chance - SLIP) * sigmoid(8.0 * (c - d))
}

/// Evaluate a capability profile over a task suite.
pub fn evaluate(model_name: &str, profile: CapabilityProfile, suite: &[Task]) -> EvalReport {
    let model_seed = model_name
        .bytes()
        .fold(0xE7A1u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64));
    // Tasks are mutually independent (each draws from its own
    // (model, task)-derived stream), so score them on the work-stealing
    // pool; `map_collect` returns results in suite order regardless of
    // the steal schedule, keeping reports byte-identical.
    let results = moe_par::map_collect(suite.len(), |t| {
        let task = &suite[t];
        let c = match task.kind {
            TaskKind::Language => profile.language,
            TaskKind::VisionLanguage => profile.vision,
        };
        let task_seed = derive_seed(
            model_seed,
            task.name
                .bytes()
                .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64)),
        );
        let mut rng = rng_from_seed(task_seed);
        let mut correct = 0usize;
        for i in 0..task.num_items {
            let d = item_difficulty(task, i);
            let p = expected_item_accuracy(c, d, task.chance);
            if rng.next_f64() < p {
                correct += 1;
            }
        }
        TaskResult {
            task: task.name,
            kind: task.kind,
            items: task.num_items,
            correct,
        }
    });
    EvalReport {
        model: model_name.to_string(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::capability;
    use crate::tasks::{lm_task_suite, vlm_task_suite};

    #[test]
    fn report_is_deterministic() {
        let p = capability("Mixtral-8x7B").unwrap();
        let a = evaluate("Mixtral-8x7B", p, &lm_task_suite());
        let b = evaluate("Mixtral-8x7B", p, &lm_task_suite());
        assert_eq!(a, b);
    }

    #[test]
    fn stronger_model_scores_higher() {
        let suite = lm_task_suite();
        let weak = evaluate("OLMoE-1B-7B", capability("OLMoE-1B-7B").unwrap(), &suite);
        let strong = evaluate(
            "Qwen3-30B-A3B",
            capability("Qwen3-30B-A3B").unwrap(),
            &suite,
        );
        assert!(strong.average_accuracy() > weak.average_accuracy());
    }

    #[test]
    fn accuracies_above_chance_below_one() {
        let suite = lm_task_suite();
        let r = evaluate("Mixtral-8x7B", capability("Mixtral-8x7B").unwrap(), &suite);
        for tr in &r.results {
            let task = suite.iter().find(|t| t.name == tr.task).unwrap();
            assert!(
                tr.accuracy() > task.chance - 0.05,
                "{}: {}",
                tr.task,
                tr.accuracy()
            );
            assert!(tr.accuracy() < 1.0);
        }
    }

    #[test]
    fn item_accuracy_curve_shape() {
        // At c == d the model sits halfway between chance and the slipped
        // ceiling.
        let mid = expected_item_accuracy(0.5, 0.5, 0.25);
        assert!((mid - (0.25 + (0.75 - SLIP) * 0.5)).abs() < 1e-9);
        // Far above difficulty: near the (slipped) ceiling. Far below:
        // near chance.
        assert!(expected_item_accuracy(0.9, 0.3, 0.25) > 1.0 - SLIP - 0.1);
        assert!(expected_item_accuracy(0.9, 0.3, 0.25) < 1.0 - SLIP + 1e-9);
        assert!(expected_item_accuracy(0.1, 0.8, 0.25) < 0.30);
        // Monotone in capability.
        assert!(expected_item_accuracy(0.6, 0.5, 0.25) > expected_item_accuracy(0.4, 0.5, 0.25));
    }

    #[test]
    fn text_model_fails_vlm_suite() {
        // A text-only profile (vision = 0) performs near chance on VLM
        // tasks.
        let p = capability("Mixtral-8x7B").unwrap();
        let r = evaluate("Mixtral-8x7B", p, &vlm_task_suite());
        let suite = vlm_task_suite();
        for tr in &r.results {
            let task = suite.iter().find(|t| t.name == tr.task).unwrap();
            assert!(
                tr.accuracy() < task.chance + 0.15,
                "{}: {}",
                tr.task,
                tr.accuracy()
            );
        }
    }

    #[test]
    fn vlm_family_ordering_survives_harness_noise() {
        // Fig. 18: Tiny < Small < Base after running the full harness.
        let suite = vlm_task_suite();
        let acc = |n: &str| evaluate(n, capability(n).unwrap(), &suite).average_accuracy();
        let tiny = acc("DeepSeek-VL2-Tiny");
        let small = acc("DeepSeek-VL2-Small");
        let base = acc("DeepSeek-VL2");
        assert!(tiny < small && small < base, "{tiny} {small} {base}");
    }

    #[test]
    fn average_is_unweighted_task_mean() {
        let p = capability("OLMoE-1B-7B").unwrap();
        let r = evaluate("OLMoE-1B-7B", p, &lm_task_suite());
        let manual: f64 =
            r.results.iter().map(|t| t.accuracy()).sum::<f64>() / r.results.len() as f64;
        assert!((r.average_accuracy() - manual).abs() < 1e-12);
    }

    #[test]
    fn task_lookup() {
        let p = capability("OLMoE-1B-7B").unwrap();
        let r = evaluate("OLMoE-1B-7B", p, &lm_task_suite());
        assert!(r.task("MMLU").is_some());
        assert!(r.task("NoSuchTask").is_none());
    }
}
