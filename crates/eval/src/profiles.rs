//! Capability profiles: per-model quality scores calibrated to publicly
//! reported benchmark results for the released checkpoints.
//!
//! These are *data*, not measurements — exactly as the paper's accuracy
//! axis is: it reports what lm-eval measures for public checkpoints. The
//! ordering the paper's Figures 17/18 rely on is pinned by tests:
//! Qwen3-30B-A3B and Mixtral-8x7B lead, OLMoE trails them, DeepSeek-V2-Lite
//! and Qwen1.5-MoE sit in the middle, Phi-3.5-MoE is competitive; for the
//! VLMs Tiny < Small < Base.

use moe_json::{FromJson, ToJson};

/// A model's quality profile.
#[derive(Debug, Clone, Copy, PartialEq, ToJson, FromJson)]
pub struct CapabilityProfile {
    /// Language capability (0–1): drives language-task accuracy.
    pub language: f64,
    /// Vision-language capability (0–1): drives VLM-task accuracy;
    /// zero for text-only models.
    pub vision: f64,
}

const PROFILES: [(&str, CapabilityProfile); 15] = [
    (
        "Mixtral-8x7B",
        CapabilityProfile {
            language: 0.70,
            vision: 0.0,
        },
    ),
    (
        "Qwen1.5-MoE-A2.7B",
        CapabilityProfile {
            language: 0.60,
            vision: 0.0,
        },
    ),
    (
        "Qwen3-30B-A3B",
        CapabilityProfile {
            language: 0.74,
            vision: 0.0,
        },
    ),
    (
        "DeepSeek-V2-Lite",
        CapabilityProfile {
            language: 0.62,
            vision: 0.0,
        },
    ),
    (
        "Phi-3.5-MoE",
        CapabilityProfile {
            language: 0.69,
            vision: 0.0,
        },
    ),
    (
        "OLMoE-1B-7B",
        CapabilityProfile {
            language: 0.55,
            vision: 0.0,
        },
    ),
    (
        "DeepSeek-VL2-Tiny",
        CapabilityProfile {
            language: 0.50,
            vision: 0.52,
        },
    ),
    (
        "DeepSeek-VL2-Small",
        CapabilityProfile {
            language: 0.58,
            vision: 0.60,
        },
    ),
    (
        "DeepSeek-VL2",
        CapabilityProfile {
            language: 0.63,
            vision: 0.66,
        },
    ),
    (
        "MolmoE-1B",
        CapabilityProfile {
            language: 0.52,
            vision: 0.50,
        },
    ),
    (
        "Llama-4-Scout-17B-16E",
        CapabilityProfile {
            language: 0.73,
            vision: 0.62,
        },
    ),
    (
        "Qwen3-0.6B",
        CapabilityProfile {
            language: 0.40,
            vision: 0.0,
        },
    ),
    (
        "Qwen3-1.7B",
        CapabilityProfile {
            language: 0.50,
            vision: 0.0,
        },
    ),
    (
        "Qwen3-4B",
        CapabilityProfile {
            language: 0.58,
            vision: 0.0,
        },
    ),
    (
        "Qwen3-8B",
        CapabilityProfile {
            language: 0.64,
            vision: 0.0,
        },
    ),
];

/// Look up a model's capability profile by name.
pub fn capability(model_name: &str) -> Option<CapabilityProfile> {
    PROFILES
        .iter()
        .find(|(n, _)| *n == model_name)
        .map(|(_, p)| *p)
}

/// Heuristic fallback for custom/variant configs: capability grows
/// logarithmically with active parameters (a crude but monotone scaling
/// law), saturating below 0.8.
pub fn capability_from_active_params(active_params: u64) -> CapabilityProfile {
    let b = (active_params as f64 / 1e9).max(0.05);
    let language = (0.42 + 0.09 * b.ln()).clamp(0.2, 0.8);
    CapabilityProfile {
        language,
        vision: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_models_have_profiles() {
        for m in moe_model::registry::all_models() {
            assert!(
                capability(&m.name).is_some(),
                "missing profile for {}",
                m.name
            );
        }
    }

    #[test]
    fn fig17_ordering_pinned() {
        let cap = |n: &str| capability(n).unwrap().language;
        // Large MoEs dominate accuracy.
        assert!(cap("Qwen3-30B-A3B") > cap("Mixtral-8x7B"));
        assert!(cap("Mixtral-8x7B") > cap("DeepSeek-V2-Lite"));
        assert!(cap("DeepSeek-V2-Lite") > cap("Qwen1.5-MoE-A2.7B"));
        assert!(cap("Qwen1.5-MoE-A2.7B") > cap("OLMoE-1B-7B"));
        // Phi competitive despite worst efficiency.
        assert!(cap("Phi-3.5-MoE") > cap("DeepSeek-V2-Lite"));
    }

    #[test]
    fn fig18_vlm_ordering_pinned() {
        let cap = |n: &str| capability(n).unwrap().vision;
        assert!(cap("DeepSeek-VL2") > cap("DeepSeek-VL2-Small"));
        assert!(cap("DeepSeek-VL2-Small") > cap("DeepSeek-VL2-Tiny"));
    }

    #[test]
    fn draft_quality_ordered_by_size() {
        let cap = |n: &str| capability(n).unwrap().language;
        assert!(cap("Qwen3-0.6B") < cap("Qwen3-1.7B"));
        assert!(cap("Qwen3-1.7B") < cap("Qwen3-4B"));
        assert!(cap("Qwen3-4B") < cap("Qwen3-8B"));
    }

    #[test]
    fn text_models_have_no_vision() {
        assert_eq!(capability("Mixtral-8x7B").unwrap().vision, 0.0);
        assert!(capability("DeepSeek-VL2").unwrap().vision > 0.0);
    }

    #[test]
    fn fallback_is_monotone_and_bounded() {
        let small = capability_from_active_params(500_000_000);
        let big = capability_from_active_params(13_000_000_000);
        assert!(small.language < big.language);
        assert!((0.2..=0.8).contains(&small.language));
        assert!((0.2..=0.8).contains(&big.language));
    }

    #[test]
    fn unknown_model_is_none() {
        assert!(capability("GPT-7-Ultra").is_none());
    }
}
