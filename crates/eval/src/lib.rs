//! # moe-eval
//!
//! The accuracy-evaluation substrate — the substitution for lm-eval and
//! VLMEvalKit (Section 8 of the paper).
//!
//! The paper's accuracy figures (17, 18) plot *model quality* (a property
//! of the released checkpoints, measured by standard harnesses and widely
//! published) against *serving performance* (which we simulate). Since no
//! checkpoints exist in this environment, model quality comes from
//! embedded capability profiles calibrated to publicly reported scores
//! ([`profiles`]); the *harness machinery* — task suites, per-item
//! scoring, aggregation — runs for real over synthetic items
//! ([`tasks`], [`harness`]), so the code path a real evaluation would take
//! is fully exercised and deterministic.
//!
//! The expert-activation-frequency study (Fig. 15) is *not* synthetic at
//! the mechanism level: [`activation`] routes real token batches through
//! the real `moe-engine` router, with balanced (aux-loss-style) vs skewed
//! router weights, and reports the same heat-map/imbalance statistics the
//! paper plots.

#![forbid(unsafe_code)]

pub mod activation;
pub mod harness;
pub mod profiles;
pub mod tasks;

pub use harness::{evaluate, EvalReport, TaskResult};
pub use profiles::{capability, CapabilityProfile};
pub use tasks::{lm_task_suite, vlm_task_suite, Task, TaskKind};
