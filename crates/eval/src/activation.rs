//! The expert-activation-frequency study (Fig. 15): route an MME-like
//! multimodal token stream through *real* routers and compare activation
//! heat maps between aux-loss-balanced models (DeepSeek-VL2 family) and
//! an unbalanced one (MolmoE-1B).
//!
//! The mechanism is executed faithfully at reduced scale: a down-scaled
//! analogue of each model (same expert count, same router kind, same
//! balanced-vs-skewed gate statistics) processes synthetic image+text
//! token batches, and the per-(layer, expert) selection counts are
//! collected by the engine. Counts are then scaled to the full MME pass
//! volume so magnitudes are comparable to the paper's (~290 K peak for
//! DeepSeek-VL2, ~1 M for MolmoE).

use moe_engine::model::MoeTransformer;
use moe_engine::stats::ActivationStats;
use moe_engine::weights::{default_router_skew, ModelWeights};
use moe_json::{FromJson, ToJson};
use moe_model::{ModelConfig, MoeConfig};
use moe_tensor::rng::{derive_seed, rng_from_seed};

/// Result of one activation study.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct ActivationReport {
    pub model: String,
    pub num_layers: usize,
    pub num_experts: usize,
    /// Row-normalized heat map (`[layer][expert]`, rows sum to 1).
    pub heatmap: Vec<Vec<f64>>,
    /// Peak single-expert count, scaled to the full MME token volume.
    pub peak_count: u64,
    /// Mean max/mean imbalance across layers.
    pub mean_imbalance: f64,
    /// Mean normalized entropy across layers (1 = uniform).
    pub mean_entropy: f64,
}

/// Synthetic MME token stream: bursts of "image" tokens (drawn from a
/// narrow vocabulary band, as projected patches cluster) interleaved with
/// diverse text tokens.
pub fn mme_token(rng: &mut moe_tensor::rng::DetRng, global_index: usize, vocab: usize) -> usize {
    if (global_index / 16).is_multiple_of(2) {
        rng.next_below(vocab / 8)
    } else {
        rng.next_below(vocab)
    }
}

/// Build the down-scaled analogue: the real model's expert count, top-k,
/// router kind and balance flag on the tiny executor geometry.
pub fn analogue_config(full: &ModelConfig) -> ModelConfig {
    let moe = full
        .moe
        .as_ref()
        .expect("activation study needs an MoE model"); // lint:allow(no-panic-in-lib) -- caller contract: the activation study requires an MoE config
    let mut tiny = moe_model::registry::tiny_test_model(moe.num_experts, moe.top_k);
    tiny.name = format!("{}-analogue", full.name);
    tiny.num_layers = full.num_layers.min(8);
    tiny.moe = Some(MoeConfig {
        num_experts: moe.num_experts,
        top_k: moe.top_k,
        expert_ffn_dim: 32,
        num_shared_experts: 0,
        shared_expert_ffn_dim: 0,
        router: moe.router,
        aux_loss_balanced: moe.aux_loss_balanced,
    });
    tiny
}

/// Total MoE routing decisions in a full MME pass for scaling counts:
/// items x (image tokens + text tokens) x top_k per layer.
pub fn mme_assignments_per_layer(full: &ModelConfig) -> u64 {
    let image_tokens = full
        .vision
        .as_ref()
        .map(|v| v.tokens_per_image)
        .unwrap_or(0) as u64;
    let text_tokens = 64u64;
    let items = 2374u64; // MME item count
    let top_k = full.moe.as_ref().map(|m| m.top_k).unwrap_or(0) as u64;
    items * (image_tokens + text_tokens) * top_k
}

/// Feed `sample_tokens` of the synthetic MME stream through the model,
/// collecting activation statistics. Documents of 64 tokens are processed
/// in 32-token chunks over a shared KV cache, then the cache restarts.
/// (Document length is kept moderate: an *untrained* random-weight
/// analogue degenerates to near-identical hidden states at deep context,
/// which no balancing mechanism can split — an artifact real trained
/// models do not share.)
fn run_mme_stream(model: &mut MoeTransformer, sample_tokens: usize, seed: u64) -> ActivationStats {
    model.enable_stats();
    let mut rng = rng_from_seed(seed);
    let vocab = model.config().vocab_size;
    let mut processed = 0usize;
    let mut doc_pos = 0usize; // position within the current "document"
    let mut kv = model.new_kv();
    let chunk = 32usize;
    const DOC_LEN: usize = 64;
    while processed < sample_tokens {
        let n = chunk.min(sample_tokens - processed).min(DOC_LEN - doc_pos);
        let tokens: Vec<usize> = (0..n)
            .map(|i| mme_token(&mut rng, processed + i, vocab))
            .collect();
        let positions: Vec<usize> = (doc_pos..doc_pos + n).collect();
        let _ = model.forward(&tokens, &positions, &mut kv);
        processed += n;
        doc_pos += n;
        if doc_pos >= DOC_LEN {
            kv = model.new_kv();
            doc_pos = 0;
        }
    }
    model.take_stats().expect("stats enabled") // lint:allow(no-panic-in-lib) -- stats collection was enabled when the model was built above
}

/// Run the study for one model: `sample_tokens` synthetic multimodal
/// tokens are routed through the analogue; counts are scaled to the full
/// MME volume.
pub fn activation_study(full: &ModelConfig, sample_tokens: usize, seed: u64) -> ActivationReport {
    let tiny = analogue_config(full);
    // Mix the model identity into the seed so structurally-identical
    // analogues (e.g. VL2-Tiny vs VL2-Small) still get distinct routers.
    let name_hash = full
        .name
        .bytes()
        .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64));
    let seed = derive_seed(seed, name_hash);
    let weights = ModelWeights::init_with_skew(&tiny, seed, default_router_skew(full));
    let mut model = MoeTransformer::with_weights(tiny.clone(), weights);
    if full.moe.as_ref().is_some_and(|m| m.aux_loss_balanced) {
        // Aux-loss-trained models route near-uniformly *on their training
        // mix*; reproduce that property with bias-balancing calibration
        // (the DeepSeek-V3 mechanism), calibrated on the exact stream the
        // study measures.
        for round in 0..12 {
            let stats = run_mme_stream(&mut model, sample_tokens, derive_seed(seed, 0xBA7 + round));
            let lr = 1.2 / (1.0 + round as f32 * 0.5);
            moe_engine::balance::apply_bias_update(&mut model, &stats, lr);
        }
    }

    let stats = run_mme_stream(&mut model, sample_tokens, derive_seed(seed, 0xA11));
    summarize(&full.name, full, &stats, sample_tokens)
}

fn summarize(
    name: &str,
    full: &ModelConfig,
    stats: &ActivationStats,
    sample_tokens: usize,
) -> ActivationReport {
    let sampled_assign_per_layer =
        (sample_tokens * full.moe.as_ref().map(|m| m.top_k).unwrap_or(0)).max(1) as f64;
    let scale = mme_assignments_per_layer(full) as f64 / sampled_assign_per_layer;
    let peak_count = (stats.peak_count() as f64 * scale) as u64;
    let mean_entropy = (0..stats.num_layers())
        .map(|l| stats.normalized_entropy(l))
        .sum::<f64>()
        / stats.num_layers().max(1) as f64;
    ActivationReport {
        model: name.to_string(),
        num_layers: stats.num_layers(),
        num_experts: stats.num_experts(),
        heatmap: stats.heatmap(),
        peak_count,
        mean_imbalance: stats.mean_imbalance(),
        mean_entropy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_model::registry::{deepseek_vl2_tiny, molmoe_1b};

    #[test]
    fn analogue_preserves_routing_structure() {
        let full = molmoe_1b();
        let tiny = analogue_config(&full);
        let fm = full.moe.as_ref().unwrap();
        let tm = tiny.moe.as_ref().unwrap();
        assert_eq!(fm.num_experts, tm.num_experts);
        assert_eq!(fm.top_k, tm.top_k);
        assert_eq!(fm.aux_loss_balanced, tm.aux_loss_balanced);
        assert!(tiny.validate().is_empty());
    }

    #[test]
    fn balanced_model_routes_more_uniformly_than_skewed() {
        // The Fig. 15 headline, from real routing.
        let balanced = activation_study(&deepseek_vl2_tiny(), 1024, 7);
        let skewed = activation_study(&molmoe_1b(), 1024, 7);
        assert!(
            skewed.mean_imbalance > 1.5 * balanced.mean_imbalance,
            "skewed {} vs balanced {}",
            skewed.mean_imbalance,
            balanced.mean_imbalance
        );
        assert!(skewed.mean_entropy < balanced.mean_entropy);
    }

    #[test]
    fn peak_counts_match_paper_magnitudes() {
        // DeepSeek-VL2 peaks around ~290 K, MolmoE around ~1 M.
        let balanced = activation_study(&deepseek_vl2_tiny(), 1024, 3);
        let skewed = activation_study(&molmoe_1b(), 1024, 3);
        assert!(skewed.peak_count > 2 * balanced.peak_count);
        assert!(
            (50_000..5_000_000).contains(&balanced.peak_count),
            "balanced peak {}",
            balanced.peak_count
        );
        assert!(
            (200_000..20_000_000).contains(&skewed.peak_count),
            "skewed peak {}",
            skewed.peak_count
        );
    }

    #[test]
    fn heatmap_rows_normalized() {
        let rep = activation_study(&deepseek_vl2_tiny(), 256, 1);
        for row in &rep.heatmap {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        assert_eq!(rep.num_experts, 64);
    }

    #[test]
    fn study_is_deterministic() {
        let a = activation_study(&molmoe_1b(), 128, 5);
        let b = activation_study(&molmoe_1b(), 128, 5);
        assert_eq!(a, b);
    }
}
