//! Planner orchestration: materialize the workload, search the grid,
//! refine the frontier through the cluster simulator, and recommend one
//! configuration.

use std::error::Error;
use std::fmt;

use moe_cluster::generate;
use moe_cluster::workload::RequestTrace;
use moe_gpusim::convert::f64_to_count;
use moe_json::{FromJson, ToJson};
use moe_trace::{Category, Tracer};

use crate::candidate::order_key;
use crate::refine::{refine_candidate, RefinedScore};
use crate::score::{CandidateScore, WorkloadSketch};
use crate::search::{search, SearchCounts};
use crate::spec::PlannerSpec;
use crate::PLANNER_TRACK;

/// Why planning failed outright (distinct from per-candidate
/// infeasibility, which the report only counts).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanFailure {
    /// The spec is malformed; the message names the offending field.
    InvalidSpec(String),
    /// Every enumerated candidate was infeasible (plan-invalid or beyond
    /// the OOM wall) — the fleet cannot host the model at all.
    NoFeasibleCandidate,
}

impl fmt::Display for PlanFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanFailure::InvalidSpec(msg) => write!(f, "invalid planner spec: {msg}"),
            PlanFailure::NoFeasibleCandidate => {
                write!(
                    f,
                    "no feasible candidate: every configuration was plan-invalid or out of memory"
                )
            }
        }
    }
}

impl Error for PlanFailure {}

/// The planner's output: the Pareto frontier, the cluster-refined top-K,
/// and one recommended configuration. Serializes byte-identically across
/// replays of the same spec and seed.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct PlanReport {
    /// Target model name.
    pub model: String,
    /// Fleet label, e.g. `4x H100-SXM5`.
    pub fleet: String,
    /// Total devices in the fleet.
    pub devices: usize,
    /// Search-mode label (`exhaustive`, `beam(8)`).
    pub mode: String,
    /// Master seed the report replays from.
    pub seed: u64,
    /// The SLO the search optimized against.
    pub slo: crate::spec::SloSpec,
    /// Workload statistics derived from the materialized trace.
    pub sketch: WorkloadSketch,
    /// Enumeration/pruning accounting (the OOM wall shows up here).
    pub counts: SearchCounts,
    /// Pareto-optimal analytic scores, cost-ascending.
    pub frontier: Vec<CandidateScore>,
    /// Cluster-measured refinements of the top-K frontier picks, in
    /// refinement order.
    pub refined: Vec<RefinedScore>,
    /// The recommended deployment (best refined candidate).
    pub recommended: RefinedScore,
}

/// Workload statistics of a materialized trace (means floor to at least
/// one token; offered rate spans first to last arrival).
pub fn sketch_of(trace: &RequestTrace) -> WorkloadSketch {
    let n = trace.requests.len().max(1);
    let total_in: usize = trace.requests.iter().map(|r| r.prompt_len).sum();
    let total_out: usize = trace.requests.iter().map(|r| r.max_new_tokens).sum();
    let max_seq = trace
        .requests
        .iter()
        .map(|r| r.prompt_len + r.max_new_tokens)
        .max()
        .unwrap_or(1);
    let span_s = trace
        .requests
        .last()
        .map(|r| r.arrival_s)
        .unwrap_or(0.0)
        .max(1e-9);
    WorkloadSketch {
        offered_qps: trace.requests.len() as f64 / span_s,
        mean_input: f64_to_count(total_in as f64 / n as f64).max(1),
        mean_output: f64_to_count(total_out as f64 / n as f64).max(1),
        max_seq,
    }
}

/// Frontier ordering for refinement: SLO-meeting candidates first, then
/// cheapest, most accurate, fastest, enumeration key. Deterministic and
/// independent of float formatting.
fn refinement_rank(c: &CandidateScore) -> impl Ord {
    (
        u8::from(!c.meets_slo),
        c.cost_per_token_device_s.to_bits(),
        (1.0 - c.accuracy).to_bits(),
        (-c.predicted_tok_s).to_bits(),
        order_key(&c.config),
    )
}

/// Recommendation ordering over refined candidates: measured-SLO winners
/// first, then highest attainment, cheapest measured cost, lowest tail
/// TTFT, enumeration key.
fn recommendation_rank(r: &RefinedScore) -> impl Ord {
    (
        u8::from(!r.meets_slo),
        (1.0 - r.slo_attainment).to_bits(),
        r.cost_per_token_device_s.to_bits(),
        r.p99_ttft_s.to_bits(),
        order_key(&r.config),
    )
}

/// Run the full planning pipeline without tracing.
pub fn plan(spec: &PlannerSpec) -> Result<PlanReport, PlanFailure> {
    plan_traced(spec, &mut Tracer::disabled())
}

/// Run the full planning pipeline, emitting planner spans on
/// [`PLANNER_TRACK`] (plus the cluster's own tracks during refinement)
/// when the tracer is enabled.
pub fn plan_traced(spec: &PlannerSpec, tracer: &mut Tracer) -> Result<PlanReport, PlanFailure> {
    spec.check()?;
    if tracer.is_enabled() {
        tracer.name_track(PLANNER_TRACK, "planner");
    }

    let trace = generate(&spec.workload, spec.seed);
    let sketch = sketch_of(&trace);
    let outcome = search(spec, &sketch);
    if tracer.is_enabled() {
        tracer.instant(
            PLANNER_TRACK,
            Category::Bench,
            &format!("search {}", spec.mode.label()),
            0.0,
            vec![
                ("enumerated", outcome.counts.enumerated.into()),
                ("scored", outcome.counts.scored.into()),
                ("infeasible_oom", outcome.counts.infeasible_oom.into()),
                ("frontier", outcome.frontier.len().into()),
            ],
        );
    }
    if outcome.frontier.is_empty() {
        return Err(PlanFailure::NoFeasibleCandidate);
    }

    // Pick the top-K frontier candidates for refinement.
    let mut picks: Vec<&CandidateScore> = outcome.frontier.iter().collect();
    picks.sort_by_key(|c| refinement_rank(c));
    picks.truncate(spec.refine_top_k);

    // Refine picks concurrently on the work-stealing pool, one child
    // tracer per pick, absorbed in submission order — the composed
    // timeline is a pure function of the pick list, not of the worker
    // count or steal schedule.
    let enabled = tracer.is_enabled();
    let results = moe_par::map_collect(picks.len(), |i| {
        let mut child = if enabled {
            Tracer::new(Box::new(moe_trace::MemorySink::new()))
        } else {
            Tracer::disabled()
        };
        let outcome = refine_candidate(spec, &sketch, &picks[i].config, &trace, &mut child);
        (outcome, child)
    });
    let mut refined: Vec<RefinedScore> = Vec::new();
    for (outcome, child) in results {
        tracer.absorb(child);
        match outcome {
            Ok(r) => refined.push(r),
            // Defensive: frontier members scored feasible, so refinement
            // cannot reject them; skip rather than abort if it ever does.
            Err(_) => continue,
        }
    }
    let recommended = refined
        .iter()
        .min_by_key(|r| recommendation_rank(r))
        .cloned()
        .ok_or(PlanFailure::NoFeasibleCandidate)?;

    Ok(PlanReport {
        model: spec.model.name.clone(),
        fleet: spec.fleet.label(),
        devices: spec.fleet.count(),
        mode: spec.mode.label(),
        seed: spec.seed,
        slo: spec.slo,
        sketch,
        counts: outcome.counts,
        frontier: outcome.frontier,
        refined,
        recommended,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FleetSpec, SearchMode, SearchSpace, SloSpec};
    use moe_cluster::{TenantSpec, WorkloadSpec};
    use moe_model::registry::olmoe_1b_7b;

    fn spec(mode: SearchMode) -> PlannerSpec {
        PlannerSpec {
            model: olmoe_1b_7b(),
            draft: None,
            fleet: FleetSpec::h100(2),
            workload: WorkloadSpec::poisson(
                25.0,
                30,
                TenantSpec::uniform("chat", 1.0, (128, 256), (32, 64)),
            ),
            slo: SloSpec::latency(0.5, 0.05),
            space: SearchSpace::minimal(),
            mode,
            refine_top_k: 2,
            seed: 11,
        }
    }

    #[test]
    fn plan_produces_frontier_and_recommendation() {
        let report = plan(&spec(SearchMode::Exhaustive)).unwrap();
        assert!(!report.frontier.is_empty());
        assert!(!report.refined.is_empty());
        assert!(report.refined.len() <= 2);
        assert!(report
            .refined
            .iter()
            .any(|r| r.config == report.recommended.config));
        assert_eq!(report.devices, 2);
        // The recommendation must be feasible on its face.
        assert!(report.recommended.config.devices() <= 2);
    }

    #[test]
    fn beam_matches_exhaustive_when_width_covers_shapes() {
        let exhaustive = plan(&spec(SearchMode::Exhaustive)).unwrap();
        let beam = plan(&spec(SearchMode::Beam { width: 64 })).unwrap();
        assert_eq!(beam.counts.pruned_by_width, 0);
        assert_eq!(exhaustive.frontier, beam.frontier);
        assert_eq!(exhaustive.recommended, beam.recommended);
    }

    #[test]
    fn malformed_specs_fail_typed() {
        let mut s = spec(SearchMode::Exhaustive);
        s.refine_top_k = 0;
        match plan(&s) {
            Err(PlanFailure::InvalidSpec(msg)) => assert!(msg.contains("refine_top_k")),
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }

    #[test]
    fn sketch_derives_means_and_rate() {
        let s = spec(SearchMode::Exhaustive);
        let trace = generate(&s.workload, s.seed);
        let sketch = sketch_of(&trace);
        assert!(sketch.mean_input >= 128 && sketch.mean_input <= 256);
        assert!(sketch.mean_output >= 32 && sketch.mean_output <= 64);
        assert!(sketch.max_seq <= 256 + 64);
        assert!(sketch.offered_qps > 0.0);
    }
}
