//! Heterogeneous fleet planning: per-class feasibility and pricing, plus
//! blended mixed-fleet deployments with CAP cost axes.
//!
//! The classic planner ([`crate::plan`]) is single-pool by construction —
//! its `CandidateConfig` describes replicas of one device type, and its
//! reports are frozen byte-for-byte in `reports/`. [`plan_fleet`] layers
//! heterogeneity on top without touching that contract: each pool of a
//! mixed [`FleetSpec`] is planned independently
//! with the classic pipeline (so per-class feasibility and frontiers are
//! exactly what the homogeneous planner would say), then per-class
//! frontier picks are composed into *mixed deployments* whose traffic is
//! split proportionally to each class's throughput capacity.
//!
//! Blending is exact where it can be and conservative where it cannot:
//!
//! * capacities (`predicted_tok_s`) are load-independent in the analytic
//!   model, so they sum across classes;
//! * per-class TTFT is *de-inflated* back to the raw prefill estimate by
//!   inverting [`queueing_inflation`] at the class's solo utilization,
//!   then re-inflated at the blended utilization — the same M/D/1 factor
//!   the classic scorer applies;
//! * ITL and TTFT take the max across classes (a request lands on one
//!   class; the tail is the slowest class), accuracy the min;
//! * cost adds a USD axis: `usd_per_mtok` from per-device prices in the
//!   device zoo, the end-to-end MoE-CAP cost metric.

use moe_gpusim::cap;
use moe_json::ToJson;
use moe_trace::Tracer;

use crate::candidate::order_key;
use crate::planner::{plan_traced, PlanFailure, PlanReport};
use crate::score::{queueing_inflation, CandidateScore, WorkloadSketch, MAX_RHO};
use crate::spec::{FleetSpec, PlannerSpec};

/// Frontier picks per class considered for mixing. Small and fixed: with
/// `C` classes the composition space is `(MIXED_TOP_PER_CLASS + 1)^C - 1`.
pub const MIXED_TOP_PER_CLASS: usize = 3;

/// The classic planner's verdict on one device class of a mixed fleet.
#[derive(Debug, Clone, PartialEq, ToJson)]
pub struct ClassPlan {
    /// Device name (zoo profile name).
    pub device: String,
    /// Device-class label (`datacenter-gpu`, `edge-soc`, ...).
    pub class: String,
    /// Devices of this class in the fleet.
    pub count: usize,
    /// Indicative price of one device-hour (USD).
    pub usd_per_device_hour: f64,
    /// Whether the classic planner found any feasible candidate.
    pub feasible: bool,
    /// Failure label when infeasible (`""` when feasible).
    pub failure: String,
    /// The class-local Pareto frontier (empty when infeasible).
    pub frontier: Vec<CandidateScore>,
}

/// One class's contribution to a mixed deployment.
#[derive(Debug, Clone, PartialEq, ToJson)]
pub struct MixedPart {
    /// Device name the part runs on.
    pub device: String,
    /// Fraction of offered traffic routed to this part (capacity share).
    pub share: f64,
    /// Price of this part's devices (USD/hour, all devices of the part).
    pub usd_per_hour: f64,
    /// The class-local candidate backing the part.
    pub score: CandidateScore,
}

/// A blended mixed-fleet deployment: one frontier pick per participating
/// class, traffic split by capacity.
#[derive(Debug, Clone, PartialEq, ToJson)]
pub struct MixedScore {
    /// Device-prefixed parts joined with ` + `, e.g.
    /// `H100-SXM5-80GB[1x TP2 fp8 mbt32768] + RTX-4090-24GB[2x TP1 ...]`.
    pub label: String,
    /// Total devices held across classes.
    pub devices: usize,
    /// Blended fleet capacity (tokens/s).
    pub predicted_tok_s: f64,
    /// Worst-class TTFT re-inflated at the blended utilization (s).
    pub predicted_ttft_s: f64,
    /// Worst-class inter-token latency (s).
    pub predicted_itl_s: f64,
    /// Device-seconds per token at capacity (the classic CAP cost axis).
    pub cost_per_token_device_s: f64,
    /// USD per million tokens at capacity — the priced CAP cost axis.
    pub usd_per_mtok: f64,
    /// Worst-class accuracy proxy.
    pub accuracy: f64,
    /// Blended offered load over blended capacity (clamped to [0, 1]).
    pub utilization: f64,
    /// True when every SLO bound holds for the blend.
    pub meets_slo: bool,
    /// Per-class parts, in fleet pool order.
    pub parts: Vec<MixedPart>,
}

/// Mixed-fleet planning report: per-class feasibility/pricing plus the
/// blended Pareto frontier with CAP axes.
#[derive(Debug, Clone, PartialEq, ToJson)]
pub struct FleetPlanReport {
    /// Target model name.
    pub model: String,
    /// Fleet label, pools joined with ` + `.
    pub fleet: String,
    /// Total devices across pools.
    pub devices: usize,
    /// Search-mode label.
    pub mode: String,
    /// Master seed.
    pub seed: u64,
    /// Workload statistics (shared by every class plan).
    pub sketch: WorkloadSketch,
    /// Per-class verdicts, in fleet pool order.
    pub classes: Vec<ClassPlan>,
    /// Pareto-optimal mixed deployments, USD-cost-ascending.
    pub frontier: Vec<MixedScore>,
    /// The recommended blend (SLO-meeting, then cheapest in USD).
    pub recommended: MixedScore,
}

/// Deterministic total order over mixed deployments: the device *name*
/// joins each part's candidate enumeration key, so mixed frontiers are
/// byte-stable across worker counts regardless of which class finished
/// scoring first.
fn mixed_order_key(m: &MixedScore) -> Vec<(String, MixedPartKey)> {
    m.parts
        .iter()
        .map(|p| (p.device.clone(), order_key(&p.score.config)))
        .collect()
}

type MixedPartKey = (
    usize,
    usize,
    u8,
    u8,
    usize,
    u8,
    u64,
    u8,
    usize,
    (u64, u64, u64),
);

/// `a` dominates `b` over the mixed CAP axes: USD cost and ITL minimized,
/// accuracy and throughput maximized.
fn dominates(a: &MixedScore, b: &MixedScore) -> bool {
    let no_worse = a.usd_per_mtok <= b.usd_per_mtok
        && a.accuracy >= b.accuracy
        && a.predicted_tok_s >= b.predicted_tok_s
        && a.predicted_itl_s <= b.predicted_itl_s;
    let better = a.usd_per_mtok < b.usd_per_mtok
        || a.accuracy > b.accuracy
        || a.predicted_tok_s > b.predicted_tok_s
        || a.predicted_itl_s < b.predicted_itl_s;
    no_worse && better
}

/// Blend one frontier pick per participating class into a mixed score.
fn blend(
    spec: &PlannerSpec,
    sketch: &WorkloadSketch,
    picks: &[(usize, &CandidateScore)],
) -> MixedScore {
    let offered = sketch.offered_tok_s();
    let total_capacity: f64 = picks.iter().map(|(_, s)| s.predicted_tok_s).sum();
    let rho = (offered / total_capacity.max(1e-12)).max(0.0);
    let rho_eff = rho.min(MAX_RHO);
    let inflation = queueing_inflation(rho_eff);

    let mut parts = Vec::with_capacity(picks.len());
    let mut devices = 0usize;
    let mut usd_per_hour = 0.0;
    let mut raw_ttft: f64 = 0.0;
    let mut itl: f64 = 0.0;
    let mut accuracy = f64::MAX;
    for &(pool_idx, score) in picks {
        let pool = &spec.fleet.pools[pool_idx];
        // Invert the solo inflation the classic scorer applied to this
        // class (same rho expression, same clamp, same factor).
        let solo_rho = (offered / score.predicted_tok_s.max(1e-12)).max(0.0);
        let solo_inflation = queueing_inflation(solo_rho.min(MAX_RHO));
        raw_ttft = raw_ttft.max(score.predicted_ttft_s / solo_inflation);
        itl = itl.max(score.predicted_itl_s);
        accuracy = accuracy.min(score.accuracy);
        devices += score.devices;
        let part_usd = score.devices as f64 * pool.device.power.price_per_hour_usd;
        usd_per_hour += part_usd;
        parts.push(MixedPart {
            device: pool.device.name.clone(),
            share: score.predicted_tok_s / total_capacity.max(1e-12),
            usd_per_hour: part_usd,
            score: score.clone(),
        });
    }

    let ttft = raw_ttft * inflation;
    let cost = devices as f64 / total_capacity.max(1e-12);
    let usd_per_mtok = cap::usd_per_mtok(usd_per_hour, total_capacity.max(1e-12));
    let meets_slo = rho < 1.0
        && ttft <= spec.slo.p99_ttft_s
        && itl <= spec.slo.p99_itl_s
        && cost <= spec.slo.max_cost_per_token_device_s
        && accuracy >= spec.slo.min_accuracy;
    let label = parts
        .iter()
        .map(|p| format!("{}[{}]", p.device, p.score.label))
        .collect::<Vec<_>>()
        .join(" + ");

    MixedScore {
        label,
        devices,
        predicted_tok_s: total_capacity,
        predicted_ttft_s: ttft,
        predicted_itl_s: itl,
        cost_per_token_device_s: cost,
        usd_per_mtok,
        accuracy,
        utilization: rho.min(1.0),
        meets_slo,
        parts,
    }
}

/// Rank for picking the per-class frontier candidates offered to the
/// mixer: SLO-meeting first, then cheapest, then enumeration order —
/// mirrors the classic refinement rank.
fn class_pick_rank(c: &CandidateScore) -> impl Ord {
    (
        u8::from(!c.meets_slo),
        c.cost_per_token_device_s.to_bits(),
        (1.0 - c.accuracy).to_bits(),
        order_key(&c.config),
    )
}

/// Recommendation order over blends: SLO-meeting first, then cheapest in
/// USD, then the deterministic mixed key.
fn recommendation_rank(m: &MixedScore) -> (u8, u64, Vec<(String, MixedPartKey)>) {
    (
        u8::from(!m.meets_slo),
        m.usd_per_mtok.to_bits(),
        mixed_order_key(m),
    )
}

/// Plan a (possibly mixed) fleet without tracing.
pub fn plan_fleet(spec: &PlannerSpec) -> Result<FleetPlanReport, PlanFailure> {
    plan_fleet_traced(spec, &mut Tracer::disabled())
}

/// Plan a (possibly mixed) fleet: run the classic planner per pool, then
/// compose per-class frontier picks into blended mixed deployments.
/// Uniform fleets work too — the blend frontier then contains the
/// single-class deployments.
pub fn plan_fleet_traced(
    spec: &PlannerSpec,
    tracer: &mut Tracer,
) -> Result<FleetPlanReport, PlanFailure> {
    if spec.fleet.pools.is_empty() {
        return Err(PlanFailure::InvalidSpec("fleet has zero pools".into()));
    }
    for pool in &spec.fleet.pools {
        if pool.count == 0 {
            return Err(PlanFailure::InvalidSpec(format!(
                "pool {} has zero devices",
                pool.device.name
            )));
        }
    }

    // Classic plan per pool, sequentially in pool order (each plan
    // already fans out on the worker pool internally).
    let mut classes = Vec::with_capacity(spec.fleet.pools.len());
    let mut class_reports: Vec<Option<PlanReport>> = Vec::with_capacity(spec.fleet.pools.len());
    let mut sketch: Option<WorkloadSketch> = None;
    for pool in &spec.fleet.pools {
        let sub = PlannerSpec {
            fleet: FleetSpec {
                pools: vec![pool.clone()],
            },
            ..spec.clone()
        };
        let outcome = plan_traced(&sub, tracer);
        let (feasible, failure, frontier, report) = match outcome {
            Ok(report) => {
                sketch.get_or_insert(report.sketch);
                (true, String::new(), report.frontier.clone(), Some(report))
            }
            Err(PlanFailure::NoFeasibleCandidate) => {
                (false, "no feasible candidate".to_string(), Vec::new(), None)
            }
            Err(e) => return Err(e),
        };
        classes.push(ClassPlan {
            device: pool.device.name.clone(),
            class: pool.device.class.label().to_string(),
            count: pool.count,
            usd_per_device_hour: pool.device.power.price_per_hour_usd,
            feasible,
            failure,
            frontier,
        });
        class_reports.push(report);
    }
    let sketch = sketch.ok_or(PlanFailure::NoFeasibleCandidate)?;

    // Per class: the top picks offered to the mixer.
    let mut class_picks: Vec<Vec<&CandidateScore>> = Vec::with_capacity(classes.len());
    for class in &classes {
        let mut picks: Vec<&CandidateScore> = class.frontier.iter().collect();
        picks.sort_by_key(|c| class_pick_rank(c));
        picks.truncate(MIXED_TOP_PER_CLASS);
        class_picks.push(picks);
    }

    // Enumerate every composition: per class either one of its picks or
    // absent; skip the all-absent composition. Deterministic nested
    // enumeration in pool order.
    let mut blends: Vec<MixedScore> = Vec::new();
    let mut cursor: Vec<usize> = vec![0; classes.len()]; // 0 = absent, i+1 = pick i
    loop {
        let picks: Vec<(usize, &CandidateScore)> = cursor
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(pool_idx, &c)| (pool_idx, class_picks[pool_idx][c - 1]))
            .collect();
        if !picks.is_empty() {
            blends.push(blend(spec, &sketch, &picks));
        }
        // Odometer increment over per-class option counts.
        let mut advanced = false;
        for (pool_idx, digit) in cursor.iter_mut().enumerate() {
            if *digit < class_picks[pool_idx].len() {
                *digit += 1;
                advanced = true;
                break;
            }
            *digit = 0;
        }
        if !advanced {
            break;
        }
    }
    if blends.is_empty() {
        return Err(PlanFailure::NoFeasibleCandidate);
    }

    // Pareto filter over the CAP axes, then USD-ascending deterministic
    // order.
    let mut frontier: Vec<MixedScore> = blends
        .iter()
        .filter(|m| !blends.iter().any(|other| dominates(other, m)))
        .cloned()
        .collect();
    frontier.sort_by_key(|m| (m.usd_per_mtok.to_bits(), mixed_order_key(m)));

    let recommended = frontier
        .iter()
        .min_by_key(|m| recommendation_rank(m))
        .cloned()
        .ok_or(PlanFailure::NoFeasibleCandidate)?;

    Ok(FleetPlanReport {
        model: spec.model.name.clone(),
        fleet: spec.fleet.label(),
        devices: spec.fleet.count(),
        mode: spec.mode.label(),
        seed: spec.seed,
        sketch,
        classes,
        frontier,
        recommended,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DevicePool, SearchMode, SearchSpace, SloSpec};
    use moe_cluster::{TenantSpec, WorkloadSpec};
    use moe_model::registry;

    fn mixed_spec() -> PlannerSpec {
        PlannerSpec {
            model: registry::olmoe_1b_7b(),
            draft: None,
            fleet: FleetSpec::mixed(vec![
                DevicePool::of("h100", 2).expect("zoo device"),
                DevicePool::of("4090", 4).expect("zoo device"),
            ]),
            workload: WorkloadSpec::poisson(
                2.0,
                40,
                TenantSpec::uniform("chat", 1.0, (128, 512), (32, 128)),
            ),
            slo: SloSpec::latency(2.0, 0.2),
            space: SearchSpace::minimal(),
            mode: SearchMode::Exhaustive,
            refine_top_k: 1,
            seed: 7,
        }
    }

    #[test]
    fn classic_plan_rejects_mixed_fleets() {
        let spec = mixed_spec();
        match crate::plan(&spec) {
            Err(PlanFailure::InvalidSpec(msg)) => assert!(msg.contains("plan_fleet"), "{msg}"),
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
    }

    #[test]
    fn mixed_fleet_plans_every_class_and_blends() {
        let report = plan_fleet(&mixed_spec()).expect("mixed plan succeeds");
        assert_eq!(report.classes.len(), 2);
        assert_eq!(report.classes[0].device, "H100-SXM5-80GB");
        assert_eq!(report.classes[1].device, "RTX-4090-24GB");
        assert!(report.classes.iter().all(|c| c.feasible));
        assert!(!report.frontier.is_empty());
        // At least one genuinely mixed deployment exists in the blends'
        // frontier or the single-class picks dominate — either way every
        // frontier label names its device(s).
        for m in &report.frontier {
            assert!(!m.parts.is_empty());
            for p in &m.parts {
                assert!(m.label.contains(&p.device), "{}", m.label);
            }
            let share: f64 = m.parts.iter().map(|p| p.share).sum();
            assert!((share - 1.0).abs() < 1e-9);
            assert!(m.usd_per_mtok > 0.0);
        }
        assert_eq!(report.fleet, "2x H100-SXM5-80GB + 4x RTX-4090-24GB");
        assert_eq!(report.devices, 6);
    }

    #[test]
    fn uniform_fleet_blends_to_single_class_deployments() {
        let mut spec = mixed_spec();
        spec.fleet = FleetSpec::h100(2);
        let report = plan_fleet(&spec).expect("uniform plan succeeds");
        assert_eq!(report.classes.len(), 1);
        for m in &report.frontier {
            assert_eq!(m.parts.len(), 1);
            assert!((m.parts[0].share - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn infeasible_class_is_reported_not_fatal() {
        let mut spec = mixed_spec();
        // Mixtral fp16 (94 GB of weights) cannot fit a single 24 GB 4090,
        // but still fits the H100 pool at TP2.
        spec.model = registry::mixtral_8x7b();
        spec.fleet = FleetSpec::mixed(vec![
            DevicePool::of("h100", 2).expect("zoo device"),
            DevicePool::of("4090", 1).expect("zoo device"),
        ]);
        let report = plan_fleet(&spec).expect("H100 class keeps the fleet feasible");
        assert!(report.classes[0].feasible);
        assert!(!report.classes[1].feasible);
        assert_eq!(report.classes[1].failure, "no feasible candidate");
        // Every blend runs on the feasible class only.
        for m in &report.frontier {
            assert!(m.parts.iter().all(|p| p.device == "H100-SXM5-80GB"));
        }
    }

    #[test]
    fn blended_metrics_are_conservative_composites() {
        let report = plan_fleet(&mixed_spec()).expect("mixed plan succeeds");
        for m in &report.frontier {
            let cap_sum: f64 = m.parts.iter().map(|p| p.score.predicted_tok_s).sum();
            assert!((m.predicted_tok_s - cap_sum).abs() < 1e-9 * cap_sum.max(1.0));
            let worst_itl = m
                .parts
                .iter()
                .map(|p| p.score.predicted_itl_s)
                .fold(0.0, f64::max);
            assert_eq!(m.predicted_itl_s, worst_itl);
            let min_acc = m
                .parts
                .iter()
                .map(|p| p.score.accuracy)
                .fold(f64::MAX, f64::min);
            assert_eq!(m.accuracy, min_acc);
        }
    }
}
