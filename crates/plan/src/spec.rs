//! Planner inputs: the fleet, the SLO, the searchable knob space, and the
//! search mode.

use moe_cluster::{RoutePolicy, WorkloadSpec};
use moe_gpusim::device::{Cluster, DeviceProfile, Interconnect};
use moe_gpusim::residency::ExpertResidency;
use moe_json::{FromJson, ToJson};
use moe_model::ModelConfig;
use moe_tensor::Precision;

use crate::PlanFailure;

/// One homogeneous pool inside a (possibly mixed) fleet: one accelerator
/// profile, one intra-node fabric, `count` devices. Replicas carve device
/// groups out of a pool; a replica never spans pools.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePool {
    /// Accelerator profile shared by every device in the pool.
    pub device: DeviceProfile,
    /// Fabric inside a replica's device group.
    pub link: Interconnect,
    /// Devices in the pool.
    pub count: usize,
}

impl DevicePool {
    /// Pool of `count` devices of the given profile on the given fabric.
    pub fn new(device: DeviceProfile, link: Interconnect, count: usize) -> Self {
        Self {
            device,
            link,
            count,
        }
    }

    /// Pool of `count` zoo devices looked up by name/alias, joined by the
    /// profile's default port fabric. `None` for unknown devices.
    pub fn of(name: &str, count: usize) -> Option<Self> {
        let device = moe_gpusim::device::profile(name)?;
        let link = device.default_link();
        Some(Self {
            device,
            link,
            count,
        })
    }

    /// One replica's device group of the given degree.
    pub fn cluster(&self, degree: usize) -> Cluster {
        Cluster {
            device: self.device.clone(),
            num_devices: degree,
            link: self.link,
            devices_per_node: degree,
            inter_link: Interconnect::infiniband_ndr(),
        }
    }

    /// Short label for reports, e.g. `4x H100-SXM5-80GB`.
    pub fn label(&self) -> String {
        format!("{}x {}", self.count, self.device.name)
    }
}

/// The device fleet: one or more homogeneous pools. The classic planner
/// ([`crate::plan`]) requires a single pool; mixed fleets go through
/// [`crate::plan_fleet`], which plans each pool and blends the frontiers.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Homogeneous pools, in deterministic declaration order.
    pub pools: Vec<DevicePool>,
}

impl FleetSpec {
    /// `count` H100 SXM5 devices on NVLink — the paper's testbed scaled out.
    pub fn h100(count: usize) -> Self {
        Self::uniform(
            moe_gpusim::device::profile("h100").expect("h100 is in the zoo"), // lint:allow(no-panic-in-lib) -- registry always carries the paper's baseline device
            Interconnect::nvlink4(),
            count,
        )
    }

    /// A single homogeneous pool.
    pub fn uniform(device: DeviceProfile, link: Interconnect, count: usize) -> Self {
        Self {
            pools: vec![DevicePool::new(device, link, count)],
        }
    }

    /// A mixed fleet of several pools (declaration order is preserved and
    /// deterministic).
    pub fn mixed(pools: Vec<DevicePool>) -> Self {
        Self { pools }
    }

    /// Total devices across pools.
    pub fn count(&self) -> usize {
        self.pools.iter().map(|p| p.count).sum()
    }

    /// Whether the fleet has more than one pool.
    pub fn is_mixed(&self) -> bool {
        self.pools.len() > 1
    }

    /// The first (and for uniform fleets, only) pool.
    pub fn primary(&self) -> &DevicePool {
        self.pools.first().expect("fleet needs at least one pool") // lint:allow(no-panic-in-lib) -- PlannerSpec::check rejects empty fleets before any planning path reaches here
    }

    /// One replica's device group of the given degree, carved from the
    /// primary pool.
    pub fn cluster(&self, degree: usize) -> Cluster {
        self.primary().cluster(degree)
    }

    /// Short label for reports: `4x H100-SXM5-80GB`, or pools joined with
    /// ` + ` for mixed fleets.
    pub fn label(&self) -> String {
        self.pools
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

/// Service-level objective plus budgets. A candidate *meets the SLO* when
/// every bound holds; use `f64::MAX` (or `0.0` for the accuracy floor) to
/// disable a bound.
#[derive(Debug, Clone, Copy, PartialEq, ToJson, FromJson)]
pub struct SloSpec {
    /// p99 time-to-first-token target (s).
    pub p99_ttft_s: f64,
    /// p99 inter-token-latency target (s).
    pub p99_itl_s: f64,
    /// Cost budget in device-seconds per completed token (the MoE-CAP
    /// cost axis; `ClusterReport::cost_per_token_device_s` measures the
    /// same quantity).
    pub max_cost_per_token_device_s: f64,
    /// Accuracy-proxy floor (0–1); pruned/quantized variants pay
    /// penalties against it.
    pub min_accuracy: f64,
}

impl SloSpec {
    /// Latency targets only; cost and accuracy unconstrained.
    pub fn latency(p99_ttft_s: f64, p99_itl_s: f64) -> Self {
        Self {
            p99_ttft_s,
            p99_itl_s,
            max_cost_per_token_device_s: f64::MAX,
            min_accuracy: 0.0,
        }
    }

    /// Add a cost budget (device-seconds per token).
    pub fn with_cost_budget(mut self, budget: f64) -> Self {
        self.max_cost_per_token_device_s = budget;
        self
    }

    /// Add an accuracy-proxy floor.
    pub fn with_accuracy_floor(mut self, floor: f64) -> Self {
        self.min_accuracy = floor;
        self
    }
}

/// The searchable knob grid. Parallel plans and replica counts are derived
/// from the fleet (every power-of-two degree, every replica count that
/// fits); everything else is enumerated from these lists.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    /// Weight precisions to consider.
    pub precisions: Vec<Precision>,
    /// Inter-expert pruning ratios (0.0 = unpruned). Collapses to
    /// `[0.0]` for dense models.
    pub prune_ratios: Vec<f64>,
    /// Speculative-decode settings. `true` requires a draft model in the
    /// [`PlannerSpec`]; collapses to `[false]` without one.
    pub spec_decode: Vec<bool>,
    /// Max batched tokens per engine step (the chunked-prefill budget).
    pub max_batch_tokens: Vec<usize>,
    /// Expert-residency configurations (HBM budget + offload tier).
    /// [`ExpertResidency::all_resident`] is the classic no-offload
    /// deployment; offloaded entries turn OOM walls into cost cliffs.
    /// Collapses to all-resident for dense models.
    pub residencies: Vec<ExpertResidency>,
    /// Router policies swept during cluster refinement (the analytic
    /// model is policy-blind, so policy is a refinement-stage knob).
    pub policies: Vec<RoutePolicy>,
}

impl SearchSpace {
    /// The default paper-shaped grid: fp16 vs fp8, three pruning levels,
    /// two chunked-prefill budgets, queue-aware routing.
    pub fn paper() -> Self {
        Self {
            precisions: vec![Precision::F16, Precision::Fp8E4M3],
            prune_ratios: vec![0.0, 0.25, 0.5],
            spec_decode: vec![false],
            max_batch_tokens: vec![8_192, 32_768],
            residencies: vec![ExpertResidency::all_resident()],
            policies: vec![RoutePolicy::LeastOutstanding],
        }
    }

    /// A minimal grid for smoke tests: one knob value per dimension
    /// except precision.
    pub fn minimal() -> Self {
        Self {
            precisions: vec![Precision::F16, Precision::Fp8E4M3],
            prune_ratios: vec![0.0],
            spec_decode: vec![false],
            max_batch_tokens: vec![32_768],
            residencies: vec![ExpertResidency::all_resident()],
            policies: vec![RoutePolicy::LeastOutstanding],
        }
    }

    /// Add offloaded residency configurations to the grid (all-resident
    /// stays enumerated first).
    pub fn with_residencies(mut self, extra: &[ExpertResidency]) -> Self {
        self.residencies.extend_from_slice(extra);
        self
    }
}

/// How to traverse the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Score every enumerated candidate. Ground truth for small grids.
    Exhaustive,
    /// Branch-and-bound over deployment *shapes* (plan x replicas x
    /// precision) with admissible roofline bounds, keeping at most
    /// `width` shapes. With `width >=` the shape count, the Pareto
    /// frontier is provably identical to [`SearchMode::Exhaustive`]
    /// (bound-pruned subtrees are strictly dominated by a scored point).
    Beam {
        /// Maximum shapes expanded into full candidates.
        width: usize,
    },
}

impl SearchMode {
    /// Stable label for reports ("exhaustive", "beam(8)").
    pub fn label(&self) -> String {
        match self {
            SearchMode::Exhaustive => "exhaustive".to_string(),
            SearchMode::Beam { width } => format!("beam({width})"),
        }
    }
}

/// Everything the planner needs: model, fleet, workload, SLO, grid, mode.
#[derive(Debug, Clone)]
pub struct PlannerSpec {
    /// Target model (from `moe-model::registry` or custom).
    pub model: ModelConfig,
    /// Draft model for speculative decoding; `None` disables the
    /// spec-decode knob.
    pub draft: Option<ModelConfig>,
    /// Device fleet.
    pub fleet: FleetSpec,
    /// Workload sketch; materialized once with `seed` and shared by
    /// analytic scoring and cluster refinement.
    pub workload: WorkloadSpec,
    /// Service-level objective and budgets.
    pub slo: SloSpec,
    /// Knob grid.
    pub space: SearchSpace,
    /// Search mode.
    pub mode: SearchMode,
    /// Frontier candidates refined through the cluster simulator.
    pub refine_top_k: usize,
    /// Master seed: workload materialization and cluster tie-breaking
    /// derive from it, so the full report replays byte-identically.
    pub seed: u64,
}

impl PlannerSpec {
    /// Validate the inputs; the planner refuses malformed specs instead
    /// of panicking mid-search.
    pub fn check(&self) -> Result<(), PlanFailure> {
        let fail = |msg: String| Err(PlanFailure::InvalidSpec(msg));
        if self.fleet.count() == 0 {
            return fail("fleet has zero devices".into());
        }
        if self.fleet.is_mixed() {
            return fail("mixed fleet: the classic planner is single-pool; use plan_fleet".into());
        }
        if self.workload.num_requests == 0 {
            return fail("workload has zero requests".into());
        }
        if self.refine_top_k == 0 {
            return fail("refine_top_k must be at least 1".into());
        }
        if let SearchMode::Beam { width: 0 } = self.mode {
            return fail("beam width must be at least 1".into());
        }
        if self.space.precisions.is_empty()
            || self.space.prune_ratios.is_empty()
            || self.space.spec_decode.is_empty()
            || self.space.max_batch_tokens.is_empty()
            || self.space.residencies.is_empty()
            || self.space.policies.is_empty()
        {
            return fail("every search-space dimension needs at least one value".into());
        }
        for r in &self.space.residencies {
            if !(r.resident_frac > 0.0 && r.resident_frac <= 1.0) {
                return fail(format!(
                    "residency resident_frac {} outside (0, 1]",
                    r.resident_frac
                ));
            }
            if !(0.0..=1.0).contains(&r.residency_hit) || !(0.0..=1.0).contains(&r.predictor_hit) {
                return fail("residency hit probabilities must be in [0, 1]".into());
            }
        }
        for &r in &self.space.prune_ratios {
            if !(0.0..1.0).contains(&r) {
                return fail(format!("prune ratio {r} outside [0, 1)"));
            }
        }
        for &m in &self.space.max_batch_tokens {
            if m == 0 {
                return fail("max_batch_tokens of zero".into());
            }
        }
        if self.space.spec_decode.contains(&true) && self.draft.is_none() {
            return fail("spec_decode=true in the space but no draft model given".into());
        }
        Ok(())
    }
}
