//! Grid traversal: exhaustive scoring, beam/branch-and-bound with
//! admissible bounds, and the Pareto frontier over (cost, accuracy,
//! throughput, inter-token latency).
//!
//! Latency is a frontier axis of its own because it is the one
//! dimension tensor parallelism buys (Figure 13): on (cost, accuracy,
//! throughput) alone every TP plan is dominated by replica or pipeline
//! placements, and an SLO-driven planner could never recommend the
//! paper's latency-optimal configs.
//!
//! ## Why beam ≡ exhaustive on the frontier
//!
//! Beam search bounds a whole *shape* (plan x replicas x precision) with
//! an optimistic completion: for every (prune, spec) knob pair it scores
//! the largest feasible batch budget — throughput is monotone in the
//! budget (a gpusim-pinned property), so this upper-bounds every
//! completion's throughput and lower-bounds its cost — plus the smallest
//! budget, whose operating batch lower-bounds the inter-token latency of
//! every completion. Accuracy takes the least-pruned completion. A shape
//! is skipped only when its optimistic bound is *strictly* dominated on
//! all four axes by an already-scored candidate, which proves every one
//! of its completions strictly dominated too — none of them could sit on
//! the exhaustive frontier. The `width` cap is the only lossy step; with
//! `width >=` the shape count the two modes emit byte-identical
//! frontiers, which `ext-plan` and the property tests pin.

use moe_json::{FromJson, ToJson};

use crate::candidate::{enumerate_shapes, order_key, CandidateConfig, Completions, Shape};
use crate::score::{score_candidate, CandidateScore, Infeasible, WorkloadSketch};
use crate::spec::{PlannerSpec, SearchMode};

/// Feasibility/pruning accounting for one search run.
#[derive(Debug, Clone, Copy, PartialEq, Default, ToJson, FromJson)]
pub struct SearchCounts {
    /// Deployment shapes enumerated.
    pub shapes: usize,
    /// Full grid size (shapes x knob completions).
    pub enumerated: usize,
    /// Candidates scored analytically.
    pub scored: usize,
    /// Candidates rejected by `ParallelPlan::validate`.
    pub infeasible_plan: usize,
    /// Candidates rejected by the memory model (the OOM wall).
    pub infeasible_oom: usize,
    /// Candidates skipped because their shape's admissible bound was
    /// strictly dominated (beam mode only).
    pub pruned_by_bound: usize,
    /// Candidates skipped by the beam-width cap (beam mode only; zero
    /// means the frontier provably matches exhaustive).
    pub pruned_by_width: usize,
}

/// Result of one grid traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Every scored candidate, in enumeration order.
    pub scored: Vec<CandidateScore>,
    /// Pareto-optimal scored candidates (see [`pareto_frontier`]).
    pub frontier: Vec<CandidateScore>,
    /// Accounting.
    pub counts: SearchCounts,
}

/// `a` dominates `b`: no worse on every axis (cost down, accuracy up,
/// throughput up, inter-token latency down) and strictly better on at
/// least one.
fn dominates(a: &CandidateScore, b: &CandidateScore) -> bool {
    let no_worse = a.cost_per_token_device_s <= b.cost_per_token_device_s
        && a.accuracy >= b.accuracy
        && a.predicted_tok_s >= b.predicted_tok_s
        && a.predicted_itl_s <= b.predicted_itl_s;
    let strictly = a.cost_per_token_device_s < b.cost_per_token_device_s
        || a.accuracy > b.accuracy
        || a.predicted_tok_s > b.predicted_tok_s
        || a.predicted_itl_s < b.predicted_itl_s;
    no_worse && strictly
}

/// `a` strictly dominates `b` on *every* axis — the admissible pruning
/// test (safe against frontier ties).
fn strictly_dominates_bound(a: &CandidateScore, bound: &OptimisticBound) -> bool {
    a.cost_per_token_device_s < bound.cost_lb
        && a.accuracy > bound.accuracy_ub
        && a.predicted_tok_s > bound.tok_ub
        && a.predicted_itl_s < bound.itl_lb
}

/// Admissible optimistic bound for one shape.
struct OptimisticBound {
    cost_lb: f64,
    accuracy_ub: f64,
    tok_ub: f64,
    itl_lb: f64,
}

/// Non-dominated scored points, sorted by (cost asc, accuracy desc,
/// throughput desc, enumeration key) — a deterministic frontier whose
/// JSON is byte-stable across replays and search modes.
pub fn pareto_frontier(scored: &[CandidateScore]) -> Vec<CandidateScore> {
    let mut frontier: Vec<CandidateScore> = scored
        .iter()
        .filter(|c| !scored.iter().any(|other| dominates(other, c)))
        .cloned()
        .collect();
    frontier.sort_by(|a, b| {
        a.cost_per_token_device_s
            .total_cmp(&b.cost_per_token_device_s)
            .then(b.accuracy.total_cmp(&a.accuracy))
            .then(b.predicted_tok_s.total_cmp(&a.predicted_tok_s))
            .then(a.predicted_itl_s.total_cmp(&b.predicted_itl_s))
            .then(order_key(&a.config).cmp(&order_key(&b.config)))
    });
    frontier
}

/// Fold a parallel stage's per-shape count delta into the totals (the
/// grid-level `shapes`/`enumerated` fields are set once up front).
fn add_counts(into: &mut SearchCounts, delta: &SearchCounts) {
    into.scored += delta.scored;
    into.infeasible_plan += delta.infeasible_plan;
    into.infeasible_oom += delta.infeasible_oom;
    into.pruned_by_bound += delta.pruned_by_bound;
    into.pruned_by_width += delta.pruned_by_width;
}

fn tally(counts: &mut SearchCounts, err: &Infeasible) {
    match err {
        Infeasible::Plan(_) => counts.infeasible_plan += 1,
        Infeasible::Oom(_) => counts.infeasible_oom += 1,
        // Defensive bucket; enumerated candidates validate plans first.
        Infeasible::Engine(_) => counts.infeasible_plan += 1,
    }
}

/// Expand one shape over every knob completion, scoring each.
fn expand_shape(
    spec: &PlannerSpec,
    sketch: &WorkloadSketch,
    shape: &Shape,
    completions: &Completions,
    scored: &mut Vec<CandidateScore>,
    counts: &mut SearchCounts,
) {
    for (prune, spec_decode, mbt, residency) in completions.iter() {
        let candidate = shape.complete(prune, spec_decode, mbt, residency);
        match score_candidate(spec, sketch, &candidate) {
            Ok(score) => {
                counts.scored += 1;
                scored.push(score);
            }
            Err(err) => tally(counts, &err),
        }
    }
}

/// Optimistic completion bound for a shape: per (prune, spec) pair score
/// the largest batch budget that fits (descending scan — bounds
/// throughput and cost) plus the smallest budget (feasible whenever any
/// budget is, since memory grows with the operating batch — bounds the
/// inter-token latency), then combine the best observed axes. `None`
/// when every probe is infeasible — the whole shape is then counted
/// infeasible without expansion.
fn shape_bound(
    spec: &PlannerSpec,
    sketch: &WorkloadSketch,
    shape: &Shape,
    completions: &Completions,
    counts: &mut SearchCounts,
) -> Option<OptimisticBound> {
    let mut best: Option<OptimisticBound> = None;
    for &residency in &completions.residencies {
        for &prune in &completions.prune_ratios {
            for &spec_decode in &completions.spec_decode {
                let mut probed = None;
                // Descending budgets: the largest feasible batch
                // upper-bounds the throughput of every smaller budget.
                for &mbt in completions.max_batch_tokens.iter().rev() {
                    let candidate = shape.complete(prune, spec_decode, mbt, residency);
                    match score_candidate(spec, sketch, &candidate) {
                        Ok(score) => {
                            probed = Some(score);
                            break;
                        }
                        Err(Infeasible::Oom(_)) => continue,
                        Err(_) => break, // plan errors hold for every budget
                    }
                }
                let Some(score) = probed else { continue };
                // The smallest budget runs the smallest operating batch
                // and therefore the lowest per-step latency of any
                // completion.
                let itl_lb = completions
                    .max_batch_tokens
                    .first()
                    .and_then(|&mbt| {
                        score_candidate(
                            spec,
                            sketch,
                            &shape.complete(prune, spec_decode, mbt, residency),
                        )
                        .ok()
                    })
                    .map_or(score.predicted_itl_s, |s| {
                        s.predicted_itl_s.min(score.predicted_itl_s)
                    });
                let b = best.get_or_insert(OptimisticBound {
                    cost_lb: f64::MAX,
                    accuracy_ub: 0.0,
                    tok_ub: 0.0,
                    itl_lb: f64::MAX,
                });
                b.cost_lb = b.cost_lb.min(score.cost_per_token_device_s);
                b.accuracy_ub = b.accuracy_ub.max(score.accuracy);
                b.tok_ub = b.tok_ub.max(score.predicted_tok_s);
                b.itl_lb = b.itl_lb.min(itl_lb);
            }
        }
    }
    if best.is_none() {
        // Every probe failed: the shape cannot host the workload at any
        // budget. Attribute the whole expansion to the dominant cause by
        // re-probing the cheapest completion once (most-offloaded
        // residency — the one with the best chance of fitting).
        let candidate = shape.complete(
            *completions.prune_ratios.last().unwrap_or(&0.0),
            false,
            *completions.max_batch_tokens.first().unwrap_or(&1),
            completions.residencies.last().copied().unwrap_or_default(),
        );
        match score_candidate(spec, sketch, &candidate) {
            Err(Infeasible::Plan(_)) | Err(Infeasible::Engine(_)) => {
                counts.infeasible_plan += completions.len();
            }
            _ => counts.infeasible_oom += completions.len(),
        }
    }
    best
}

/// Traverse the grid in the requested mode.
pub fn search(spec: &PlannerSpec, sketch: &WorkloadSketch) -> SearchOutcome {
    let shapes = enumerate_shapes(&spec.fleet, &spec.space);
    let completions = Completions::for_model(&spec.space, &spec.model, spec.draft.is_some());
    let mut counts = SearchCounts {
        shapes: shapes.len(),
        enumerated: shapes.len() * completions.len(),
        ..SearchCounts::default()
    };
    let mut scored: Vec<CandidateScore> = Vec::new();

    match spec.mode {
        SearchMode::Exhaustive => {
            // Shapes expand independently on the work-stealing pool;
            // per-shape results and count deltas merge back in
            // enumeration order, so the scored list and accounting are
            // identical to the serial loop's for any worker count.
            let expanded = moe_par::map_collect(shapes.len(), |i| {
                let mut part = Vec::new();
                let mut delta = SearchCounts::default();
                expand_shape(
                    spec,
                    sketch,
                    &shapes[i],
                    &completions,
                    &mut part,
                    &mut delta,
                );
                (part, delta)
            });
            for (part, delta) in expanded {
                scored.extend(part);
                add_counts(&mut counts, &delta);
            }
        }
        SearchMode::Beam { width } => {
            // Bound every shape (independent probes, parallel), then
            // keep the `width` most promising by optimistic cost (ties:
            // accuracy, throughput, order key). The expansion phase
            // below stays serial: its dominance pruning is
            // order-dependent by design.
            let probes = moe_par::map_collect(shapes.len(), |i| {
                let mut delta = SearchCounts::default();
                let bound = shape_bound(spec, sketch, &shapes[i], &completions, &mut delta);
                (bound, delta)
            });
            let mut bounded: Vec<(usize, OptimisticBound)> = Vec::new();
            for (i, (bound, delta)) in probes.into_iter().enumerate() {
                add_counts(&mut counts, &delta);
                if let Some(b) = bound {
                    bounded.push((i, b));
                }
            }
            bounded.sort_by(|(ia, a), (ib, b)| {
                a.cost_lb
                    .total_cmp(&b.cost_lb)
                    .then(b.accuracy_ub.total_cmp(&a.accuracy_ub))
                    .then(b.tok_ub.total_cmp(&a.tok_ub))
                    .then(ia.cmp(ib))
            });
            if bounded.len() > width {
                counts.pruned_by_width += (bounded.len() - width) * completions.len();
                bounded.truncate(width);
            }
            // Expand survivors in enumeration order, skipping any shape
            // whose bound a scored candidate strictly dominates.
            bounded.sort_by_key(|(i, _)| *i);
            for (i, bound) in &bounded {
                if scored.iter().any(|s| strictly_dominates_bound(s, bound)) {
                    counts.pruned_by_bound += completions.len();
                    continue;
                }
                expand_shape(
                    spec,
                    sketch,
                    &shapes[*i],
                    &completions,
                    &mut scored,
                    &mut counts,
                );
            }
        }
    }

    let frontier = pareto_frontier(&scored);
    SearchOutcome {
        scored,
        frontier,
        counts,
    }
}

/// Which reconfigurations are *reachable* from an incumbent deployment
/// in one control-plane step. An online controller cannot jump to an
/// arbitrary point of the config space — replicas are added or drained
/// a few at a time, and plan/precision changes mean provisioning a new
/// replica generation — so the incremental re-planner restricts the
/// grid to this neighborhood before searching it.
#[derive(Debug, Clone, Copy, PartialEq, ToJson, FromJson)]
pub struct ReachableSpace {
    /// Largest replica-count change considered (`|candidate - incumbent|`).
    pub max_replica_delta: usize,
    /// May the per-replica parallel plan (TP/EP/PP layout) change?
    /// Requires rolling new replicas, so controllers canary it.
    pub allow_plan_change: bool,
    /// May the weight precision change? Also a rolling change.
    pub allow_precision_change: bool,
}

impl ReachableSpace {
    /// Replica scaling only: the cheapest, always-safe reconfiguration.
    pub fn scaling_only(max_replica_delta: usize) -> Self {
        Self {
            max_replica_delta,
            allow_plan_change: false,
            allow_precision_change: false,
        }
    }

    /// Everything within a replica delta, rolling changes included.
    pub fn rolling(max_replica_delta: usize) -> Self {
        Self {
            max_replica_delta,
            allow_plan_change: true,
            allow_precision_change: true,
        }
    }

    /// Is `shape` reachable from `incumbent` under this space?
    pub fn admits(&self, shape: &Shape, incumbent: &CandidateConfig) -> bool {
        shape.replicas.abs_diff(incumbent.replicas) <= self.max_replica_delta
            && (self.allow_plan_change || shape.plan == incumbent.plan)
            && (self.allow_precision_change || shape.precision == incumbent.precision)
    }
}

/// Filter the full shape enumeration down to the reachable neighborhood
/// of `incumbent` (enumeration order preserved).
pub fn reachable_shapes(
    spec: &PlannerSpec,
    incumbent: &CandidateConfig,
    reach: &ReachableSpace,
) -> Vec<Shape> {
    enumerate_shapes(&spec.fleet, &spec.space)
        .into_iter()
        .filter(|s| reach.admits(s, incumbent))
        .collect()
}

/// Incremental re-plan: search only the reachable neighborhood of the
/// incumbent config, *warm-started* from the incumbent's shape.
///
/// The incumbent shape expands first, unconditionally — it is exempt
/// from the beam-width cap (the controller can always keep what it is
/// already running) and its scores seed the dominance pruning, so in
/// beam mode every other shape must beat the incumbent's optimistic
/// bound to be expanded at all. With the same mode and a width covering
/// the neighborhood, the frontier equals a cold [`search`] over the
/// restricted grid — the warm start changes *work*, never the answer
/// (`pruned_by_width == 0` certifies it, exactly as for cold beam).
pub fn warm_search(
    spec: &PlannerSpec,
    sketch: &WorkloadSketch,
    incumbent: &CandidateConfig,
    reach: &ReachableSpace,
) -> SearchOutcome {
    let shapes = reachable_shapes(spec, incumbent, reach);
    let completions = Completions::for_model(&spec.space, &spec.model, spec.draft.is_some());
    let mut counts = SearchCounts {
        shapes: shapes.len(),
        enumerated: shapes.len() * completions.len(),
        ..SearchCounts::default()
    };
    let mut scored: Vec<CandidateScore> = Vec::new();

    let incumbent_shape = Shape {
        plan: incumbent.plan,
        replicas: incumbent.replicas,
        precision: incumbent.precision,
    };
    let warm_idx = shapes.iter().position(|s| *s == incumbent_shape);
    if let Some(i) = warm_idx {
        expand_shape(
            spec,
            sketch,
            &shapes[i],
            &completions,
            &mut scored,
            &mut counts,
        );
    }

    match spec.mode {
        SearchMode::Exhaustive => {
            let expanded = moe_par::map_collect(shapes.len(), |i| {
                let mut part = Vec::new();
                let mut delta = SearchCounts::default();
                if Some(i) != warm_idx {
                    expand_shape(
                        spec,
                        sketch,
                        &shapes[i],
                        &completions,
                        &mut part,
                        &mut delta,
                    );
                }
                (part, delta)
            });
            for (part, delta) in expanded {
                scored.extend(part);
                add_counts(&mut counts, &delta);
            }
        }
        SearchMode::Beam { width } => {
            let probes = moe_par::map_collect(shapes.len(), |i| {
                let mut delta = SearchCounts::default();
                let bound = if Some(i) == warm_idx {
                    None // already expanded, never re-probed
                } else {
                    shape_bound(spec, sketch, &shapes[i], &completions, &mut delta)
                };
                (bound, delta)
            });
            let mut bounded: Vec<(usize, OptimisticBound)> = Vec::new();
            for (i, (bound, delta)) in probes.into_iter().enumerate() {
                add_counts(&mut counts, &delta);
                if let Some(b) = bound {
                    bounded.push((i, b));
                }
            }
            bounded.sort_by(|(ia, a), (ib, b)| {
                a.cost_lb
                    .total_cmp(&b.cost_lb)
                    .then(b.accuracy_ub.total_cmp(&a.accuracy_ub))
                    .then(b.tok_ub.total_cmp(&a.tok_ub))
                    .then(ia.cmp(ib))
            });
            if bounded.len() > width {
                counts.pruned_by_width += (bounded.len() - width) * completions.len();
                bounded.truncate(width);
            }
            bounded.sort_by_key(|(i, _)| *i);
            for (i, bound) in &bounded {
                if scored.iter().any(|s| strictly_dominates_bound(s, bound)) {
                    counts.pruned_by_bound += completions.len();
                    continue;
                }
                expand_shape(
                    spec,
                    sketch,
                    &shapes[*i],
                    &completions,
                    &mut scored,
                    &mut counts,
                );
            }
        }
    }

    let frontier = pareto_frontier(&scored);
    SearchOutcome {
        scored,
        frontier,
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::CandidateConfig;
    use moe_gpusim::parallel::ParallelPlan;
    use moe_tensor::Precision;

    fn score(cost: f64, acc: f64, tok: f64) -> CandidateScore {
        let config = CandidateConfig {
            plan: ParallelPlan::single(),
            replicas: 1,
            precision: Precision::F16,
            prune_ratio: 0.0,
            spec_decode: false,
            max_batch_tokens: moe_gpusim::convert::f64_to_count(tok * 1000.0), // distinct order keys
            residency: moe_gpusim::ExpertResidency::all_resident(),
        };
        CandidateScore {
            config,
            label: config.label(),
            devices: 1,
            operating_batch: 1,
            predicted_tok_s: tok,
            predicted_ttft_s: 0.1,
            predicted_itl_s: 0.01,
            cost_per_token_device_s: cost,
            accuracy: acc,
            utilization: 0.5,
            meets_slo: true,
        }
    }

    #[test]
    fn frontier_drops_dominated_points_keeps_ties() {
        let a = score(1.0, 0.7, 100.0);
        let b = score(2.0, 0.6, 90.0); // dominated by a
        let c = score(0.5, 0.5, 50.0); // cheaper, less accurate: kept
        let d = score(1.0, 0.7, 100.0); // tie with a: kept
        let f = pareto_frontier(&[a.clone(), b, c.clone(), d.clone()]);
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].cost_per_token_device_s, 0.5);
        assert!(f.contains(&a) && f.contains(&d) && f.contains(&c));
    }

    #[test]
    fn dominance_requires_one_strict_axis() {
        let a = score(1.0, 0.7, 100.0);
        let b = score(1.0, 0.7, 100.0);
        assert!(!dominates(&a, &b));
        let better = score(1.0, 0.7, 101.0);
        assert!(dominates(&better, &a));
    }

    use crate::spec::{FleetSpec, SearchSpace, SloSpec};
    use moe_cluster::{TenantSpec, WorkloadSpec};

    fn planner_spec(mode: SearchMode) -> crate::spec::PlannerSpec {
        crate::spec::PlannerSpec {
            model: moe_model::registry::olmoe_1b_7b(),
            draft: None,
            fleet: FleetSpec::h100(4),
            workload: WorkloadSpec::poisson(
                40.0,
                64,
                TenantSpec::uniform("t", 1.0, (128, 256), (16, 64)),
            ),
            slo: SloSpec::latency(1.0, 0.05),
            space: SearchSpace::minimal(),
            mode,
            refine_top_k: 1,
            seed: 5,
        }
    }

    fn sketch() -> WorkloadSketch {
        WorkloadSketch {
            offered_qps: 40.0,
            mean_input: 192,
            mean_output: 40,
            max_seq: 2048,
        }
    }

    /// Some feasible incumbent to warm from: the cold frontier's first.
    fn incumbent(spec: &crate::spec::PlannerSpec) -> CandidateConfig {
        search(spec, &sketch()).frontier[0].config
    }

    #[test]
    fn unrestricted_warm_search_matches_cold_search() {
        let spec = planner_spec(SearchMode::Exhaustive);
        let inc = incumbent(&spec);
        let cold = search(&spec, &sketch());
        let warm = warm_search(&spec, &sketch(), &inc, &ReachableSpace::rolling(usize::MAX));
        assert_eq!(
            warm.frontier, cold.frontier,
            "an unrestricted warm start changes work, never the answer"
        );
        assert_eq!(warm.counts.scored, cold.counts.scored);
    }

    #[test]
    fn scaling_only_reach_pins_plan_and_precision() {
        let spec = planner_spec(SearchMode::Exhaustive);
        let inc = incumbent(&spec);
        let shapes = reachable_shapes(&spec, &inc, &ReachableSpace::scaling_only(1));
        assert!(!shapes.is_empty(), "the incumbent itself is reachable");
        for s in &shapes {
            assert_eq!(s.plan, inc.plan);
            assert_eq!(s.precision, inc.precision);
            assert!(s.replicas.abs_diff(inc.replicas) <= 1);
        }
        let out = warm_search(&spec, &sketch(), &inc, &ReachableSpace::scaling_only(1));
        assert!(out
            .frontier
            .iter()
            .all(|c| c.config.plan == inc.plan && c.config.precision == inc.precision));
    }

    #[test]
    fn warm_beam_with_covering_width_matches_warm_exhaustive() {
        let inc = incumbent(&planner_spec(SearchMode::Exhaustive));
        let reach = ReachableSpace::rolling(2);
        let ex = warm_search(
            &planner_spec(SearchMode::Exhaustive),
            &sketch(),
            &inc,
            &reach,
        );
        let beam = warm_search(
            &planner_spec(SearchMode::Beam { width: 1024 }),
            &sketch(),
            &inc,
            &reach,
        );
        assert_eq!(beam.counts.pruned_by_width, 0);
        assert_eq!(beam.frontier, ex.frontier);
        // The warm start did real pruning work: bound-pruned shapes are
        // never expanded, so beam scores at most what exhaustive does.
        assert!(beam.counts.scored <= ex.counts.scored);
    }
}
