//! Analytic candidate evaluation: feasibility pruning (plan validity and
//! the OOM wall) and roofline scoring (throughput, TTFT/ITL, MoE-CAP
//! cost-per-token, accuracy proxy).

use moe_eval::profiles::capability_from_active_params;
use moe_gpusim::device::Cluster;
use moe_gpusim::memory::OomError;
use moe_gpusim::parallel::{ParallelPlan, PlanError};
use moe_gpusim::perfmodel::{EngineOptions, PerfModel, RunMetrics};
use moe_gpusim::residency::ExpertResidency;
use moe_gpusim::spec::{acceptance_rate, spec_run, SpecParams};
use moe_json::{FromJson, ToJson};
use moe_model::prune::{PruneKind, PruneSpec};
use moe_model::{ModelConfig, ParamBreakdown};
use moe_tensor::Precision;

use crate::candidate::CandidateConfig;
use crate::spec::{PlannerSpec, SloSpec};

/// Draft tokens proposed per speculative cycle.
pub const SPEC_GAMMA: usize = 4;

/// Utilization ceiling used when converting the load factor into a
/// queueing inflation — keeps predicted TTFT finite (and JSON-safe) for
/// saturated candidates, which fail the SLO anyway.
pub const MAX_RHO: f64 = 0.999;

/// M/D/1-flavored waiting-time inflation factor at effective utilization
/// `rho_eff` (callers clamp to [`MAX_RHO`] first): light load leaves the
/// raw estimate untouched, saturation blows it up. Exposed so mixed-fleet
/// blending ([`crate::plan_fleet`]) can invert and re-apply the exact same
/// inflation at the blended utilization.
pub fn queueing_inflation(rho_eff: f64) -> f64 {
    1.0 + rho_eff * rho_eff / (2.0 * (1.0 - rho_eff))
}

/// Largest decode batch the analytic capacity search will consider
/// (matches the runtime scheduler's `max_running`).
const MAX_DECODE_BATCH: usize = 512;

/// Why a candidate was pruned analytically.
#[derive(Debug, Clone, PartialEq)]
pub enum Infeasible {
    /// The parallel plan violates a model invariant.
    Plan(Vec<PlanError>),
    /// The operating point does not fit device memory (the OOM wall).
    Oom(OomError),
    /// Engine construction failed (defensive; unreachable for enumerated
    /// candidates, which validate the plan first).
    Engine(String),
}

/// Workload statistics the analytic model scores against, derived once
/// from the materialized request trace.
#[derive(Debug, Clone, Copy, PartialEq, ToJson, FromJson)]
pub struct WorkloadSketch {
    /// Mean offered load (requests/s).
    pub offered_qps: f64,
    /// Mean prompt length (tokens, >= 1).
    pub mean_input: usize,
    /// Mean generation length (tokens, >= 1).
    pub mean_output: usize,
    /// Longest prompt + generation in the trace (sizes KV pools).
    pub max_seq: usize,
}

impl WorkloadSketch {
    /// Offered token throughput (prompt + generated per second).
    pub fn offered_tok_s(&self) -> f64 {
        self.offered_qps * (self.mean_input + self.mean_output) as f64
    }
}

/// Analytic score of one feasible candidate. The four Pareto axes are
/// `cost_per_token_device_s` (minimize), `accuracy` (maximize),
/// `predicted_tok_s` (maximize) and `predicted_itl_s` (minimize — the
/// axis tensor parallelism wins); the SLO folds the rest into
/// `meets_slo`.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct CandidateScore {
    /// The configuration scored.
    pub config: CandidateConfig,
    /// `config.label()`, denormalized for reports.
    pub label: String,
    /// Devices held (`replicas x degree`).
    pub devices: usize,
    /// Batch the roofline model was evaluated at (max of the prefill
    /// wave and the capacity-matching decode batch).
    pub operating_batch: usize,
    /// Whole-fleet token throughput capacity (tokens/s).
    pub predicted_tok_s: f64,
    /// Queueing-inflated prefill estimate (s).
    pub predicted_ttft_s: f64,
    /// Midpoint-context inter-token latency (s).
    pub predicted_itl_s: f64,
    /// Device-seconds per token at capacity — the MoE-CAP cost axis.
    pub cost_per_token_device_s: f64,
    /// Accuracy proxy (0–1) after pruning/quantization penalties.
    pub accuracy: f64,
    /// Offered load over capacity (clamped to [0, 1]).
    pub utilization: f64,
    /// True when every SLO bound holds analytically.
    pub meets_slo: bool,
}

/// Apply the candidate's pruning level to the base model.
pub fn candidate_model(base: &ModelConfig, prune_ratio: f64) -> ModelConfig {
    if prune_ratio > 0.0 && base.moe.is_some() {
        PruneSpec::new(PruneKind::InterExpert, prune_ratio).apply(base)
    } else {
        base.clone()
    }
}

/// Engine options for a candidate (fused kernels on, fp16 KV cache).
/// All-resident residencies are *not* attached, so classic candidates
/// price through the exact pre-`moe-mem` option set.
pub fn candidate_options(
    plan: ParallelPlan,
    precision: Precision,
    residency: ExpertResidency,
) -> EngineOptions {
    let opts = EngineOptions::default()
        .with_precision(precision)
        .with_plan(plan);
    if residency.is_all_resident() {
        opts
    } else {
        opts.with_residency(residency)
    }
}

/// Build the placed engine model for a candidate; `Err` carries the typed
/// infeasibility.
pub fn build_engine(
    spec: &PlannerSpec,
    config: &CandidateConfig,
) -> Result<(PerfModel, ModelConfig), Infeasible> {
    let model = candidate_model(&spec.model, config.prune_ratio);
    let problems = config.plan.validate(&model);
    if !problems.is_empty() {
        return Err(Infeasible::Plan(problems));
    }
    let cluster: Cluster = spec.fleet.cluster(config.plan.degree);
    let engine = PerfModel::new(
        model.clone(),
        cluster,
        candidate_options(config.plan, config.precision, config.residency),
    )
    .map_err(Infeasible::Engine)?;
    Ok((engine, model))
}

/// Draft-model placement for speculative decoding: tensor parallel over
/// the same device group (EP/PP make no sense for a small dense draft).
fn draft_plan(plan: ParallelPlan) -> ParallelPlan {
    ParallelPlan::tensor(plan.degree.max(1))
}

/// The operating batch for a candidate under the sketch: the prefill wave
/// that fills `max_batch_tokens`, or the smallest power-of-two decode
/// batch whose token rate covers the per-replica offered load — whichever
/// is larger. Deterministic, and the batch whose memory footprint defines
/// the candidate's OOM wall.
pub fn operating_batch(
    engine: &PerfModel,
    config: &CandidateConfig,
    sketch: &WorkloadSketch,
) -> usize {
    let prefill_wave = (config.max_batch_tokens / sketch.mean_input.max(1)).clamp(1, 64);
    let per_replica_tok_s = sketch.offered_tok_s() / config.replicas as f64;
    let mid_ctx = sketch.mean_input + sketch.mean_output / 2;
    let mut decode = 1usize;
    while decode < MAX_DECODE_BATCH {
        let step = engine.decode_step_time(decode, mid_ctx);
        if step <= 0.0 || decode as f64 / step >= per_replica_tok_s {
            break;
        }
        decode *= 2;
    }
    prefill_wave.max(decode)
}

/// Score one candidate analytically, or report why it is infeasible.
pub fn score_candidate(
    spec: &PlannerSpec,
    sketch: &WorkloadSketch,
    config: &CandidateConfig,
) -> Result<CandidateScore, Infeasible> {
    let (engine, model) = build_engine(spec, config)?;
    let batch = operating_batch(&engine, config, sketch);
    let metrics = run_metrics(spec, config, &engine, &model, batch, sketch)?;

    let fleet_tok_s = config.replicas as f64 * metrics.throughput_tok_s;
    let rho = (sketch.offered_tok_s() / fleet_tok_s.max(1e-12)).max(0.0);
    let rho_eff = rho.min(MAX_RHO);
    // M/D/1-flavored waiting inflation on the prefill estimate.
    let ttft = metrics.ttft_s * queueing_inflation(rho_eff);
    let cost = config.devices() as f64 / fleet_tok_s.max(1e-12);
    let accuracy = accuracy_proxy(&spec.model, config.precision, config.prune_ratio);

    let meets_slo = rho < 1.0
        && ttft <= spec.slo.p99_ttft_s
        && metrics.itl_s <= spec.slo.p99_itl_s
        && cost <= spec.slo.max_cost_per_token_device_s
        && accuracy >= spec.slo.min_accuracy;

    Ok(CandidateScore {
        config: *config,
        label: config.label(),
        devices: config.devices(),
        operating_batch: batch,
        predicted_tok_s: fleet_tok_s,
        predicted_ttft_s: ttft,
        predicted_itl_s: metrics.itl_s,
        cost_per_token_device_s: cost,
        accuracy,
        utilization: rho.min(1.0),
        meets_slo,
    })
}

/// One roofline run at the operating point, speculative or plain.
fn run_metrics(
    spec: &PlannerSpec,
    config: &CandidateConfig,
    engine: &PerfModel,
    model: &ModelConfig,
    batch: usize,
    sketch: &WorkloadSketch,
) -> Result<RunMetrics, Infeasible> {
    if config.spec_decode {
        if let Some(draft_cfg) = &spec.draft {
            // The draft is a small dense model: always fully resident.
            let draft = PerfModel::new(
                draft_cfg.clone(),
                spec.fleet.cluster(config.plan.degree),
                candidate_options(
                    draft_plan(config.plan),
                    config.precision,
                    ExpertResidency::all_resident(),
                ),
            )
            .map_err(Infeasible::Engine)?;
            let params = SpecParams {
                gamma: SPEC_GAMMA,
                alpha: acceptance_rate(draft_cfg, model),
            };
            return spec_run(
                engine,
                &draft,
                params,
                batch,
                sketch.mean_input,
                sketch.mean_output,
            )
            .map_err(Infeasible::Oom);
        }
    }
    engine
        .run(
            batch,
            sketch.mean_input,
            sketch.mean_output,
            &mut moe_trace::Tracer::disabled(),
            0,
        )
        .map_err(Infeasible::Oom)
}

/// Accuracy proxy for a (precision, pruning) variant of `base`.
///
/// Base capability comes from `moe-eval`'s calibrated profiles (falling
/// back to the active-parameter scaling law for unknown names); the
/// paper-shaped penalties stack multiplicatively: quantization costs are
/// small and fixed per format (Fig. 10 keeps fp8 near-lossless),
/// inter-expert pruning costs grow linearly with the ratio (Fig. 11's
/// 50% prune loses roughly a third of task accuracy).
pub fn accuracy_proxy(base: &ModelConfig, precision: Precision, prune_ratio: f64) -> f64 {
    let cap = moe_eval::capability(&base.name)
        .unwrap_or_else(|| capability_from_active_params(ParamBreakdown::of(base).active()));
    let quant_penalty = match precision {
        Precision::F32 | Precision::F16 | Precision::Bf16 => 0.0,
        Precision::Fp8E4M3 => 0.01,
        Precision::Int8 => 0.02,
        Precision::Int4 => 0.06,
    };
    let prune_penalty = 0.35 * prune_ratio.clamp(0.0, 1.0);
    (cap.language * (1.0 - quant_penalty) * (1.0 - prune_penalty)).max(0.0)
}

/// SLO re-check against *measured* cluster numbers (used by refinement).
pub fn measured_meets_slo(
    slo: &SloSpec,
    p99_ttft_s: f64,
    p99_itl_s: f64,
    cost_per_token_device_s: f64,
    accuracy: f64,
    all_completed: bool,
) -> bool {
    all_completed
        && p99_ttft_s <= slo.p99_ttft_s
        && p99_itl_s <= slo.p99_itl_s
        && cost_per_token_device_s <= slo.max_cost_per_token_device_s
        && accuracy >= slo.min_accuracy
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_model::registry::{mixtral_8x7b, olmoe_1b_7b, qwen3_1_7b};

    #[test]
    fn accuracy_proxy_orders_variants() {
        let base = mixtral_8x7b();
        let clean = accuracy_proxy(&base, Precision::F16, 0.0);
        let fp8 = accuracy_proxy(&base, Precision::Fp8E4M3, 0.0);
        let pruned = accuracy_proxy(&base, Precision::F16, 0.5);
        assert!(clean > fp8, "fp8 pays a small penalty");
        assert!(fp8 > pruned, "heavy pruning costs more than fp8");
        assert!(clean > 0.6 && clean <= 1.0);
        // Unknown names fall back to the scaling law.
        let mut custom = olmoe_1b_7b();
        custom.name = "custom-moe".into();
        assert!(accuracy_proxy(&custom, Precision::F16, 0.0) > 0.2);
    }

    #[test]
    fn accuracy_proxy_monotone_in_prune_ratio() {
        let base = olmoe_1b_7b();
        let mut last = f64::MAX;
        for r in [0.0, 0.125, 0.25, 0.5] {
            let a = accuracy_proxy(&base, Precision::F16, r);
            assert!(a < last || r == 0.0);
            last = a;
        }
    }

    #[test]
    fn draft_plan_is_always_tensor() {
        assert_eq!(
            draft_plan(ParallelPlan::pipeline(4)),
            ParallelPlan::tensor(4)
        );
        assert_eq!(
            draft_plan(ParallelPlan::tensor(2).with_expert_parallel()),
            ParallelPlan::tensor(2)
        );
        assert_eq!(draft_plan(ParallelPlan::single()), ParallelPlan::single());
    }

    #[test]
    fn proxy_handles_dense_models() {
        let dense = qwen3_1_7b();
        assert!(accuracy_proxy(&dense, Precision::F16, 0.0) > 0.0);
    }
}
