//! Refinement: simulate top candidates through `moe-cluster` to replace
//! analytic estimates with measured p50/p99 latencies, SLO attainment and
//! the device-seconds cost the cluster report itself quotes.
//!
//! The router policy is a refinement-stage knob: the analytic model is
//! policy-blind, so each refined candidate sweeps every policy in the
//! space and keeps the best-measured one.

use moe_cluster::workload::RequestTrace;
use moe_cluster::{ClusterConfig, ClusterReport, ClusterSim, FaultPlan, RoutePolicy, RouterConfig};
use moe_gpusim::perfmodel::PerfModel;
use moe_json::{FromJson, ToJson};
use moe_runtime::simserver::scheduler_config_for;
use moe_tensor::rng::derive_seed;
use moe_trace::{Category, Tracer};

use crate::candidate::CandidateConfig;
use crate::score::{accuracy_proxy, build_engine, measured_meets_slo, WorkloadSketch};
use crate::spec::PlannerSpec;
use crate::{Infeasible, PLANNER_TRACK};

/// Replica-track headroom: `moe-cluster` maps replica `i` to trace track
/// `REPLICA_TRACK_BASE + i`, which collides with request tracks past 7
/// replicas — larger candidates are simulated untraced.
const MAX_TRACED_REPLICAS: usize = 7;

/// Measured (simulated) serving quality of one candidate under the
/// materialized workload trace.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct RefinedScore {
    /// The configuration refined.
    pub config: CandidateConfig,
    /// `config.label()`, denormalized for reports.
    pub label: String,
    /// Router policy that measured best (the refinement-stage knob).
    pub policy: String,
    /// Requests in the trace.
    pub submitted: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Measured p50 TTFT (s).
    pub p50_ttft_s: f64,
    /// Measured p99 TTFT (s).
    pub p99_ttft_s: f64,
    /// Measured p99 inter-token latency (s); for speculative candidates
    /// this is the simulated decode scaled by the analytic speculation
    /// speedup (the cluster engine does not model draft cycles).
    pub p99_itl_s: f64,
    /// Fraction of submitted requests finishing TTFT within the SLO.
    pub slo_attainment: f64,
    /// Measured cluster throughput (tokens/s).
    pub measured_tok_s: f64,
    /// Measured cost — `ClusterReport::cost_per_token_device_s`.
    pub cost_per_token_device_s: f64,
    /// Accuracy proxy (identical to the analytic score's).
    pub accuracy: f64,
    /// Every SLO bound holds on measured numbers.
    pub meets_slo: bool,
}

/// p99 inter-token latency over completions, streamed by the cluster's
/// ITL histogram (zero when nothing decoded more than one token).
fn p99_itl(report: &ClusterReport) -> f64 {
    report.itl.p99_s
}

/// Analytic decode-speedup factor a speculative candidate applies to the
/// simulated ITL (< 1 when speculation helps; 1 for plain candidates or
/// when the analytic model is unavailable).
fn spec_itl_factor(spec: &PlannerSpec, sketch: &WorkloadSketch, config: &CandidateConfig) -> f64 {
    if !config.spec_decode {
        return 1.0;
    }
    let plain = CandidateConfig {
        spec_decode: false,
        ..*config
    };
    match (
        crate::score::score_candidate(spec, sketch, config),
        crate::score::score_candidate(spec, sketch, &plain),
    ) {
        (Ok(with), Ok(without)) if without.predicted_itl_s > 0.0 => {
            (with.predicted_itl_s / without.predicted_itl_s).max(0.0)
        }
        _ => 1.0,
    }
}

/// Simulate one `(candidate, policy)` pair over the shared trace.
fn simulate_policy(
    engine: &PerfModel,
    spec: &PlannerSpec,
    sketch: &WorkloadSketch,
    config: &CandidateConfig,
    policy: RoutePolicy,
    trace: &RequestTrace,
    tracer: &mut Tracer,
) -> ClusterReport {
    let mut sched = scheduler_config_for(engine, sketch.max_seq);
    sched.max_batched_tokens = config.max_batch_tokens;
    let cfg = ClusterConfig {
        replicas: config.replicas,
        policy,
        router: RouterConfig::default(),
        prefix_capacity: 16,
        seed: derive_seed(spec.seed, 0x9e37),
        ..ClusterConfig::default()
    };
    let sim = ClusterSim::new(engine, sched, cfg, FaultPlan::none(), trace.clone());
    if tracer.is_enabled() && config.replicas <= MAX_TRACED_REPLICAS {
        sim.run(tracer)
    } else {
        sim.run(&mut Tracer::disabled())
    }
}

/// Refine one candidate: sweep the policy knob through the cluster
/// simulator and keep the best-measured run.
///
/// When tracing, each policy run emits the cluster's own router/replica
/// tracks, gets a grouping span on [`PLANNER_TRACK`] labeled
/// `"<candidate> / <policy>"`, and advances the tracer base by the run's
/// makespan so refinement runs tile one monotone timeline.
pub fn refine_candidate(
    spec: &PlannerSpec,
    sketch: &WorkloadSketch,
    config: &CandidateConfig,
    trace: &RequestTrace,
    tracer: &mut Tracer,
) -> Result<RefinedScore, Infeasible> {
    let (engine, _model) = build_engine(spec, config)?;
    let accuracy = accuracy_proxy(&spec.model, config.precision, config.prune_ratio);
    let itl_factor = spec_itl_factor(spec, sketch, config);

    let mut policies: Vec<RoutePolicy> = spec.space.policies.clone();
    policies.sort_by_key(|p| p.label());
    policies.dedup();

    let mut best: Option<RefinedScore> = None;
    for policy in policies {
        let report = simulate_policy(&engine, spec, sketch, config, policy, trace, tracer);
        if tracer.is_enabled() {
            tracer.span_with(
                PLANNER_TRACK,
                Category::Bench,
                &format!("{} / {}", config.label(), policy.label()),
                0.0,
                report.makespan_s,
                vec![
                    ("replicas", config.replicas.into()),
                    ("devices", config.devices().into()),
                ],
            );
            tracer.advance(report.makespan_s);
        }
        let p99_itl_s = p99_itl(&report) * itl_factor;
        let refined = RefinedScore {
            config: *config,
            label: config.label(),
            policy: policy.label().to_string(),
            submitted: report.submitted,
            completed: report.completed,
            p50_ttft_s: report.ttft.p50_s,
            p99_ttft_s: report.ttft.p99_s,
            p99_itl_s,
            slo_attainment: report.slo_attainment(spec.slo.p99_ttft_s),
            measured_tok_s: report.throughput_tok_s,
            cost_per_token_device_s: report.cost_per_token_device_s,
            accuracy,
            meets_slo: measured_meets_slo(
                &spec.slo,
                report.ttft.p99_s,
                p99_itl_s,
                report.cost_per_token_device_s,
                accuracy,
                report.completed == report.submitted,
            ),
        };
        let better = match &best {
            None => true,
            Some(b) => refined_rank(&refined) < refined_rank(b),
        };
        if better {
            best = Some(refined);
        }
    }
    // The policy list is non-empty (spec.check), so `best` is set; the
    // fallback keeps the library panic-free regardless.
    best.ok_or_else(|| Infeasible::Engine("no policies to refine over".into()))
}

/// Ascending rank: SLO-meeting runs first, then attainment, then tail
/// TTFT, then cost, then the policy label for a total order.
fn refined_rank(r: &RefinedScore) -> (u8, u64, u64, u64, String) {
    (
        u8::from(!r.meets_slo),
        (1.0 - r.slo_attainment).to_bits(),
        r.p99_ttft_s.to_bits(),
        r.cost_per_token_device_s.to_bits(),
        r.policy.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FleetSpec, PlannerSpec, SearchMode, SearchSpace, SloSpec};
    use moe_cluster::{generate, TenantSpec, WorkloadSpec};
    use moe_gpusim::parallel::ParallelPlan;
    use moe_model::registry::olmoe_1b_7b;
    use moe_tensor::Precision;

    fn tiny_spec() -> PlannerSpec {
        PlannerSpec {
            model: olmoe_1b_7b(),
            draft: None,
            fleet: FleetSpec::h100(2),
            workload: WorkloadSpec::poisson(
                20.0,
                40,
                TenantSpec::uniform("t", 1.0, (128, 256), (32, 64)),
            ),
            slo: SloSpec::latency(0.5, 0.05),
            space: SearchSpace::minimal(),
            mode: SearchMode::Exhaustive,
            refine_top_k: 1,
            seed: 7,
        }
    }

    #[test]
    fn refinement_measures_and_ranks_policies() {
        let spec = tiny_spec();
        let trace = generate(&spec.workload, spec.seed);
        let sketch = crate::planner::sketch_of(&trace);
        let config = CandidateConfig {
            plan: ParallelPlan::single(),
            replicas: 2,
            precision: Precision::F16,
            prune_ratio: 0.0,
            spec_decode: false,
            max_batch_tokens: 32_768,
            residency: moe_gpusim::residency::ExpertResidency::all_resident(),
        };
        let refined =
            refine_candidate(&spec, &sketch, &config, &trace, &mut Tracer::disabled()).unwrap();
        assert_eq!(refined.submitted, 40);
        assert_eq!(refined.completed, 40);
        assert!(refined.p99_ttft_s > 0.0);
        assert!(refined.p99_itl_s > 0.0);
        assert!(refined.cost_per_token_device_s > 0.0);
        assert_eq!(refined.policy, "least-outstanding");
    }
}
