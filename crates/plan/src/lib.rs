//! moe-plan: a deterministic deployment planner for MoE serving.
//!
//! Given a model, a device fleet, a workload sketch and an SLO, the
//! planner searches the paper's joint configuration space — parallel
//! plan (TP/PP/EP), replica count, precision, expert pruning,
//! speculative decoding, batch-token budget, router policy — and emits a
//! Pareto frontier over the MoE-CAP axes (cost-per-token in
//! device-seconds, accuracy proxy, throughput) extended with inter-token
//! latency — the axis tensor parallelism wins — plus one recommended
//! configuration.
//!
//! The pipeline has four stages:
//!
//! 1. **Enumerate** every deployment shape that fits the fleet
//!    ([`candidate::enumerate_shapes`]) and every knob completion.
//! 2. **Prune** infeasible points analytically — typed
//!    [`moe_gpusim::parallel::PlanError`]s and the memory model's OOM
//!    wall — without simulating anything.
//! 3. **Score** survivors with the roofline model and fold the SLO in
//!    ([`score::score_candidate`]); keep the Pareto frontier.
//! 4. **Refine** the top-K frontier picks through the `moe-cluster`
//!    simulator for measured p50/p99 latencies and SLO attainment,
//!    sweeping the router-policy knob ([`refine::refine_candidate`]).
//!
//! Everything is seeded and deterministic: the same [`spec::PlannerSpec`]
//! and seed replay to a byte-identical [`planner::PlanReport`] JSON, in
//! both search modes ([`spec::SearchMode::Beam`] proves itself against
//! [`spec::SearchMode::Exhaustive`] — see `search`'s module docs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidate;
pub mod fleet;
pub mod planner;
pub mod refine;
pub mod score;
pub mod search;
pub mod spec;

/// Trace track planner spans land on (cluster refinement additionally
/// uses the cluster crate's router/replica tracks).
pub const PLANNER_TRACK: moe_trace::TrackId = 3;

pub use candidate::{enumerate_shapes, CandidateConfig};
pub use fleet::{plan_fleet, plan_fleet_traced, ClassPlan, FleetPlanReport, MixedPart, MixedScore};
pub use planner::{plan, plan_traced, sketch_of, PlanFailure, PlanReport};
pub use refine::RefinedScore;
pub use score::{accuracy_proxy, score_candidate, CandidateScore, Infeasible, WorkloadSketch};
pub use search::{
    pareto_frontier, reachable_shapes, search, warm_search, ReachableSpace, SearchCounts,
    SearchOutcome,
};
pub use spec::{DevicePool, FleetSpec, PlannerSpec, SearchMode, SearchSpace, SloSpec};
