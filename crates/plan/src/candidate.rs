//! Candidate deployment configurations and their deterministic
//! enumeration.
//!
//! The grid factors into *shapes* — the expensive-to-bound outer
//! dimensions (parallel plan, replica count, precision) — and knob
//! *completions* (pruning ratio, speculative decode, max batched
//! tokens). Beam search bounds whole shapes; exhaustive search expands
//! everything. All enumeration orders are sorted by [`order_key`] so the
//! two modes visit candidates identically and reports replay
//! byte-identically.

use moe_gpusim::parallel::{ParallelMode, ParallelPlan};
use moe_gpusim::residency::ExpertResidency;
use moe_json::{FromJson, ToJson};
use moe_model::ModelConfig;
use moe_tensor::Precision;

use crate::spec::{FleetSpec, SearchSpace};

/// One fully specified deployment configuration.
#[derive(Debug, Clone, Copy, PartialEq, ToJson, FromJson)]
pub struct CandidateConfig {
    /// Device placement inside one replica.
    pub plan: ParallelPlan,
    /// Identical replicas behind the router.
    pub replicas: usize,
    /// Weight precision.
    pub precision: Precision,
    /// Inter-expert pruning ratio (0.0 = unpruned).
    pub prune_ratio: f64,
    /// Speculative decoding on/off.
    pub spec_decode: bool,
    /// Max batched tokens per engine step (chunked-prefill budget).
    pub max_batch_tokens: usize,
    /// Expert residency across the HBM budget (all-resident = the classic
    /// no-offload deployment; offloaded turns OOM into a cost cliff).
    pub residency: ExpertResidency,
}

impl CandidateConfig {
    /// Devices the deployment holds: replicas x plan degree.
    pub fn devices(&self) -> usize {
        self.replicas * self.plan.degree
    }

    /// Stable human-readable label, e.g. `2x TP2+EP fp8 prune25% mbt8192`.
    pub fn label(&self) -> String {
        let mut s = format!(
            "{}x {} {}",
            self.replicas,
            self.plan.label(),
            self.precision.label()
        );
        if self.prune_ratio > 0.0 {
            s.push_str(&format!(" prune{}%", prune_pct(self.prune_ratio)));
        }
        if self.spec_decode {
            s.push_str(" spec");
        }
        s.push_str(&format!(" mbt{}", self.max_batch_tokens));
        if self.residency.resident_frac < 1.0 {
            s.push_str(&format!(" hbm{}%", prune_pct(self.residency.resident_frac)));
        }
        s
    }
}

/// Pruning ratio as an integer percent for labels (banker-free floor of
/// `ratio * 100 + 0.5`; ratios are planner inputs in [0, 1)).
fn prune_pct(ratio: f64) -> u32 {
    (ratio * 100.0 + 0.5) as u32 // lint:allow(no-lossy-float-cast) -- display-only percent from a validated [0,1) ratio
}

/// Total order over candidates used for every enumeration and tie-break:
/// devices, then degree, mode, EP flag, replicas, precision, prune,
/// spec-decode, batch budget, residency (all-resident first).
/// Deterministic and independent of scoring.
#[allow(clippy::type_complexity)]
pub fn order_key(
    c: &CandidateConfig,
) -> (
    usize,
    usize,
    u8,
    u8,
    usize,
    u8,
    u64,
    u8,
    usize,
    (u64, u64, u64),
) {
    (
        c.devices(),
        c.plan.degree,
        match c.plan.mode {
            ParallelMode::Tensor => 0,
            ParallelMode::Pipeline => 1,
        },
        u8::from(c.plan.expert_parallel),
        c.replicas,
        precision_rank(c.precision),
        // f64 in a sort key: ratios are finite in [0, 1) by spec
        // validation, so the bit pattern is monotone in the value.
        c.prune_ratio.to_bits(),
        u8::from(c.spec_decode),
        c.max_batch_tokens,
        residency_rank(&c.residency),
    )
}

/// Stable rank for residencies: more resident sorts first, so the classic
/// all-resident deployment leads every enumeration. The complements are
/// finite non-negative f64s, so their bit patterns are monotone.
pub fn residency_rank(r: &ExpertResidency) -> (u64, u64, u64) {
    (
        (1.0 - r.resident_frac).to_bits(),
        (1.0 - r.residency_hit).to_bits(),
        (1.0 - r.predictor_hit).to_bits(),
    )
}

/// Stable rank for precisions (narrower = later, so fp16 sorts first).
fn precision_rank(p: Precision) -> u8 {
    match p {
        Precision::F32 => 0,
        Precision::F16 => 1,
        Precision::Bf16 => 2,
        Precision::Fp8E4M3 => 3,
        Precision::Int8 => 4,
        Precision::Int4 => 5,
    }
}

/// A deployment shape: the outer search dimensions that beam search
/// bounds as a unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shape {
    /// Device placement inside one replica.
    pub plan: ParallelPlan,
    /// Identical replicas behind the router.
    pub replicas: usize,
    /// Weight precision.
    pub precision: Precision,
}

impl Shape {
    /// The candidate obtained by fixing this shape's knobs.
    pub fn complete(
        &self,
        prune_ratio: f64,
        spec_decode: bool,
        max_batch_tokens: usize,
        residency: ExpertResidency,
    ) -> CandidateConfig {
        CandidateConfig {
            plan: self.plan,
            replicas: self.replicas,
            precision: self.precision,
            prune_ratio,
            spec_decode,
            max_batch_tokens,
            residency,
        }
    }
}

/// Knob lists a shape expands over, pre-collapsed for the model at hand
/// (dense models take no pruning; no draft model means no spec decode).
#[derive(Debug, Clone, PartialEq)]
pub struct Completions {
    /// Inter-expert pruning ratios, ascending.
    pub prune_ratios: Vec<f64>,
    /// Speculative-decode options, `false` first.
    pub spec_decode: Vec<bool>,
    /// Max-batched-token budgets, ascending.
    pub max_batch_tokens: Vec<usize>,
    /// Expert residencies, most-resident first (all-resident leads).
    pub residencies: Vec<ExpertResidency>,
}

impl Completions {
    /// Collapse the space's knob lists against the model: deduplicate,
    /// sort, and drop dimensions the model cannot use.
    pub fn for_model(space: &SearchSpace, model: &ModelConfig, has_draft: bool) -> Self {
        let mut prune: Vec<f64> = if model.moe.is_some() {
            space.prune_ratios.clone()
        } else {
            vec![0.0]
        };
        prune.sort_by(f64::total_cmp);
        prune.dedup();
        let mut spec: Vec<bool> = if has_draft {
            space.spec_decode.clone()
        } else {
            vec![false]
        };
        spec.sort_unstable();
        spec.dedup();
        let mut mbt = space.max_batch_tokens.clone();
        mbt.sort_unstable();
        mbt.dedup();
        // Expert offload only applies to routed experts: dense models
        // collapse to the all-resident identity.
        let mut residencies: Vec<ExpertResidency> = if model.moe.is_some() {
            space.residencies.clone()
        } else {
            vec![ExpertResidency::all_resident()]
        };
        residencies.sort_by_key(residency_rank);
        residencies.dedup();
        Self {
            prune_ratios: prune,
            spec_decode: spec,
            max_batch_tokens: mbt,
            residencies,
        }
    }

    /// Completions per shape.
    pub fn len(&self) -> usize {
        self.prune_ratios.len()
            * self.spec_decode.len()
            * self.max_batch_tokens.len()
            * self.residencies.len()
    }

    /// True when no knob has any value (cannot happen for checked specs).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All `(prune, spec, mbt, residency)` tuples in enumeration order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, bool, usize, ExpertResidency)> + '_ {
        self.prune_ratios.iter().flat_map(move |&p| {
            self.spec_decode.iter().flat_map(move |&s| {
                self.max_batch_tokens
                    .iter()
                    .flat_map(move |&m| self.residencies.iter().map(move |&r| (p, s, m, r)))
            })
        })
    }
}

/// Enumerate every deployment shape that fits the fleet, sorted by
/// [`order_key`] of a representative candidate.
///
/// Degrees are powers of two up to the fleet size (the paper's 1–8 GPU
/// settings); replicas fill whatever multiple of the degree fits. Plans
/// per degree are the four Figure-13 placements (TP, TP+EP, PP+EP, PP) —
/// degree 1 collapses to the single-device plan.
pub fn enumerate_shapes(fleet: &FleetSpec, space: &SearchSpace) -> Vec<Shape> {
    let mut shapes = Vec::new();
    let mut degree = 1usize;
    while degree <= fleet.count() {
        let plans: Vec<ParallelPlan> = if degree == 1 {
            vec![ParallelPlan::single()]
        } else {
            ParallelPlan::fig13_plans(degree)
        };
        for plan in plans {
            for replicas in 1..=fleet.count() / degree {
                for &precision in &space.precisions {
                    shapes.push(Shape {
                        plan,
                        replicas,
                        precision,
                    });
                }
            }
        }
        degree *= 2;
    }
    shapes.sort_by_key(|s| order_key(&s.complete(0.0, false, 1, ExpertResidency::all_resident())));
    shapes.dedup();
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_descriptive() {
        let c = CandidateConfig {
            plan: ParallelPlan::tensor(2).with_expert_parallel(),
            replicas: 2,
            precision: Precision::Fp8E4M3,
            prune_ratio: 0.25,
            spec_decode: true,
            max_batch_tokens: 8192,
            residency: ExpertResidency::all_resident(),
        };
        assert_eq!(c.label(), "2x TP2+EP fp8 prune25% spec mbt8192");
        assert_eq!(c.devices(), 4);
        let offloaded = CandidateConfig {
            residency: ExpertResidency::offloaded(0.5, 0.8, 0.7),
            ..c
        };
        assert_eq!(
            offloaded.label(),
            "2x TP2+EP fp8 prune25% spec mbt8192 hbm50%"
        );
        assert!(
            order_key(&c) < order_key(&offloaded),
            "all-resident sorts first"
        );
    }

    #[test]
    fn shapes_cover_fleet_and_sort_deterministically() {
        let space = SearchSpace::minimal();
        let shapes = enumerate_shapes(&FleetSpec::h100(4), &space);
        // Degrees 1, 2, 4; degree 1 has 4 replica counts, degree 2 has 4
        // plans x 2 replica counts, degree 4 has 4 plans x 1; times two
        // precisions.
        assert_eq!(shapes.len(), (4 + 4 * 2 + 4) * 2);
        let keys: Vec<_> = shapes
            .iter()
            .map(|s| order_key(&s.complete(0.0, false, 1, ExpertResidency::all_resident())))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // Every shape fits the fleet.
        assert!(shapes.iter().all(|s| s.plan.degree * s.replicas <= 4));
    }

    #[test]
    fn completions_collapse_for_dense_models() {
        let mut space = SearchSpace::paper();
        space.spec_decode = vec![false, true];
        let moe = moe_model::registry::olmoe_1b_7b();
        let dense = moe_model::registry::qwen3_1_7b();
        let with_moe = Completions::for_model(&space, &moe, true);
        assert_eq!(with_moe.prune_ratios.len(), 3);
        assert_eq!(with_moe.spec_decode, vec![false, true]);
        let without = Completions::for_model(&space, &dense, false);
        assert_eq!(without.prune_ratios, vec![0.0]);
        assert_eq!(without.spec_decode, vec![false]);
        assert_eq!(without.len(), 2); // two batch budgets
    }

    #[test]
    fn residencies_collapse_for_dense_and_sort_most_resident_first() {
        let offload = ExpertResidency::offloaded(0.5, 0.8, 0.7);
        let space = SearchSpace {
            residencies: vec![offload, ExpertResidency::all_resident()],
            ..SearchSpace::minimal()
        };
        let moe = moe_model::registry::olmoe_1b_7b();
        let dense = moe_model::registry::qwen3_1_7b();
        let with_moe = Completions::for_model(&space, &moe, false);
        assert_eq!(
            with_moe.residencies,
            vec![ExpertResidency::all_resident(), offload]
        );
        let without = Completions::for_model(&space, &dense, false);
        assert_eq!(without.residencies, vec![ExpertResidency::all_resident()]);
    }
}
