//! End-to-end tests of the `#[derive(ToJson, FromJson)]` macros, covering
//! every shape the workspace's report types use.

use moe_json::{from_str, to_string, to_string_pretty, FromJson, ToJson};

#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct Flat {
    pub name: String,
    pub count: usize,
    pub ratio: f64,
    pub flag: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, ToJson, FromJson)]
pub enum Kind {
    Alpha,
    #[allow(dead_code)]
    Beta,
    GammaDelta,
}

#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub enum Store {
    Raw(Vec<f32>),
    Packed {
        bits: Vec<u8>,
        scales: Vec<f32>,
        len: usize,
    },
    Pair(u32, u32),
    Empty,
}

#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct Nested {
    pub kind: Kind,
    pub store: Store,
    pub tables: Vec<Vec<String>>,
    pub maybe: Option<f64>,
    pub children: Vec<Flat>,
}

fn sample() -> Nested {
    Nested {
        kind: Kind::GammaDelta,
        store: Store::Packed {
            bits: vec![1, 2, 3],
            scales: vec![0.5, 0.25],
            len: 6,
        },
        tables: vec![vec!["a".into(), "b".into()], vec![]],
        maybe: None,
        children: vec![Flat {
            name: "x".into(),
            count: 3,
            ratio: 0.125,
            flag: true,
        }],
    }
}

#[test]
fn struct_fields_serialize_in_declaration_order() {
    let f = Flat {
        name: "n".into(),
        count: 1,
        ratio: 2.5,
        flag: false,
    };
    assert_eq!(
        to_string(&f),
        r#"{"name":"n","count":1,"ratio":2.5,"flag":false}"#
    );
}

#[test]
fn unit_enum_is_string() {
    assert_eq!(to_string(&Kind::Alpha), "\"Alpha\"");
    assert_eq!(from_str::<Kind>("\"GammaDelta\""), Ok(Kind::GammaDelta));
    assert!(from_str::<Kind>("\"Nope\"").is_err());
}

#[test]
fn data_enum_externally_tagged() {
    assert_eq!(to_string(&Store::Raw(vec![1.0])), r#"{"Raw":[1.0]}"#);
    assert_eq!(to_string(&Store::Pair(1, 2)), r#"{"Pair":[1,2]}"#);
    assert_eq!(to_string(&Store::Empty), "\"Empty\"");
    let s = to_string(&Store::Packed {
        bits: vec![7],
        scales: vec![1.5],
        len: 2,
    });
    assert_eq!(s, r#"{"Packed":{"bits":[7],"scales":[1.5],"len":2}}"#);
}

#[test]
fn nested_roundtrip() {
    let v = sample();
    let compact = to_string(&v);
    let pretty = to_string_pretty(&v);
    assert_eq!(from_str::<Nested>(&compact), Ok(v.clone()));
    assert_eq!(from_str::<Nested>(&pretty), Ok(v));
}

#[test]
fn missing_field_reports_name() {
    let err = from_str::<Flat>(r#"{"name":"n"}"#).unwrap_err();
    assert!(err.to_string().contains("count"), "{err}");
}

#[test]
fn option_field_tolerates_omission() {
    #[derive(Debug, PartialEq, ToJson, FromJson)]
    struct WithOpt {
        a: u8,
        b: Option<u8>,
    }
    assert_eq!(
        from_str::<WithOpt>(r#"{"a":1}"#),
        Ok(WithOpt { a: 1, b: None })
    );
    assert_eq!(
        from_str::<WithOpt>(r#"{"a":1,"b":2}"#),
        Ok(WithOpt { a: 1, b: Some(2) })
    );
}

#[test]
fn serialization_is_deterministic() {
    let a = to_string_pretty(&sample());
    let b = to_string_pretty(&sample());
    assert_eq!(a, b);
}
