//! Zero-dependency JSON for the benchmark suite.
//!
//! The crate provides a [`Json`] value model, a strict parser, compact and
//! pretty printers, and the [`ToJson`] / [`FromJson`] traits together with
//! `#[derive(ToJson, FromJson)]` macros (re-exported from
//! `moe-json-derive`). It replaces the external `serde`/`serde_json`
//! dependency so the workspace builds fully offline and every byte of the
//! serialization path is auditable by `moe-lint`.
//!
//! Determinism notes (these matter — reports are compared byte-for-byte):
//!
//! * Struct fields serialize in declaration order; map keys sort.
//! * Floats print via Rust's shortest-round-trip `Display`, which is
//!   deterministic across runs and platforms.
//! * Non-finite floats serialize as `null` (JSON has no NaN/Inf); parsing
//!   `null` as a float yields `NaN`.

#![forbid(unsafe_code)]

mod de;
mod parse;
mod ser;
mod value;

pub use de::{field, FromJson};
pub use moe_json_derive::{FromJson, ToJson};
pub use parse::parse;
pub use ser::ToJson;
pub use value::Json;

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize a value to compact JSON.
pub fn to_string<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json().render_compact()
}

/// Serialize a value to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json().render_pretty()
}

/// Parse a JSON document and convert it into `T`.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true), "true");
        assert_eq!(to_string(&42u32), "42");
        assert_eq!(to_string(&-7i64), "-7");
        assert_eq!(to_string(&1.5f64), "1.5");
        assert_eq!(to_string("hi"), "\"hi\"");
        assert_eq!(from_str::<bool>("true"), Ok(true));
        assert_eq!(from_str::<u32>("42"), Ok(42));
        assert_eq!(from_str::<f64>("1.5"), Ok(1.5));
        assert_eq!(from_str::<String>("\"hi\""), Ok("hi".to_string()));
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<Option<u8>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v);
        assert_eq!(s, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u8>>>(&s), Ok(v));
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
        assert!(from_str::<f64>("null").map(|x| x.is_nan()).unwrap_or(false));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let j = to_string(&s.to_string());
        assert_eq!(from_str::<String>(&j), Ok(s.to_string()));
    }

    #[test]
    fn pretty_output_shape() {
        let v: Vec<u8> = vec![1, 2];
        assert_eq!(to_string_pretty(&v), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<u8>>("[1,]").is_err());
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(
            from_str::<String>("\"\\u0041\\u00e9\""),
            Ok("Aé".to_string())
        );
        // Surrogate pair.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\""),
            Ok("😀".to_string())
        );
    }

    #[test]
    fn int_bounds_checked() {
        assert!(from_str::<u8>("256").is_err());
        assert!(from_str::<u8>("-1").is_err());
        assert_eq!(from_str::<i8>("-128"), Ok(-128));
    }

    #[test]
    fn float_display_is_shortest_roundtrip() {
        for &x in &[0.1f64, 1.0 / 3.0, 123456.789, 2.0f64.powi(-40)] {
            let s = to_string(&x);
            assert_eq!(from_str::<f64>(&s), Ok(x), "{s}");
        }
    }
}
