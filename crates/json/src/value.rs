//! The JSON value model and the two printers.

/// A parsed or constructed JSON value.
///
/// Integers and floats are kept distinct so that `u64` counters larger than
/// 2^53 survive a round-trip without going through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// An integer literal (no decimal point or exponent in the source).
    Int(i128),
    /// A number with a decimal point or exponent.
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in serialization order (struct declaration order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into an array.
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(idx),
            _ => None,
        }
    }

    /// Human-readable name of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "int",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Render with no whitespace.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Render with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                use std::fmt::Write as _;
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_float(*f, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Floats print via `Display`, which emits the shortest string that parses
/// back to the same value. Non-finite values have no JSON representation
/// and become `null`.
fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // `Display` never uses scientific notation, so extreme magnitudes
    // would print hundreds of digits; switch to `LowerExp` there. Both
    // formatters emit the shortest digits that round-trip exactly.
    let a = f.abs();
    // `to_bits` test for zero keeps this free of exact float comparison.
    let s = if a.to_bits() != 0 && !(1e-5..1e17).contains(&a) {
        format!("{f:e}")
    } else {
        format!("{f}")
    };
    out.push_str(&s);
    // Keep a syntactic marker that this is a float so a round-trip
    // re-parses into Json::Float rather than Json::Int.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_at() {
        let v = Json::Obj(vec![(
            "a".into(),
            Json::Arr(vec![Json::Int(1), Json::Int(2)]),
        )]);
        assert_eq!(v.get("a").and_then(|a| a.at(1)), Some(&Json::Int(2)));
        assert_eq!(v.get("b"), None);
        assert_eq!(Json::Null.get("a"), None);
    }

    #[test]
    fn float_marker_kept() {
        assert_eq!(Json::Float(2.0).render_compact(), "2.0");
        assert_eq!(Json::Float(0.5).render_compact(), "0.5");
        assert_eq!(Json::Float(1e300).render_compact(), "1e300");
    }

    #[test]
    fn control_chars_escape() {
        let mut s = String::new();
        write_escaped("\u{1}", &mut s);
        assert_eq!(s, "\"\\u0001\"");
    }

    #[test]
    fn pretty_empty_collections_inline() {
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).render_pretty(), "{}");
    }
}
