//! The [`FromJson`] trait and implementations for std types.

use crate::{Error, Json};
use std::collections::{BTreeMap, HashMap};

/// Conversion out of a [`Json`] value.
pub trait FromJson: Sized {
    fn from_json(v: &Json) -> Result<Self, Error>;
}

/// Look up `name` in an object and convert it; a missing key behaves like
/// `null` (so `Option` fields tolerate omission, everything else reports a
/// missing field). Used by the `FromJson` derive.
pub fn field<T: FromJson>(v: &Json, name: &str) -> Result<T, Error> {
    match v {
        Json::Obj(_) => match v.get(name) {
            Some(inner) => {
                T::from_json(inner).map_err(|e| Error::new(format!("field '{name}': {e}")))
            }
            None => {
                T::from_json(&Json::Null).map_err(|_| Error::new(format!("missing field '{name}'")))
            }
        },
        other => Err(Error::new(format!("expected object, got {}", other.kind()))),
    }
}

fn type_err(expected: &str, got: &Json) -> Error {
    Error::new(format!("expected {expected}, got {}", got.kind()))
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }
}

macro_rules! int_from_json {
    ($($t:ty),*) => {$(
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, Error> {
                match v {
                    Json::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::new(format!("{} out of range for {}", i, stringify!($t)))),
                    other => Err(type_err("integer", other)),
                }
            }
        }
    )*};
}
int_from_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromJson for i128 {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Int(i) => Ok(*i),
            other => Err(type_err("integer", other)),
        }
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Float(f) => Ok(*f),
            Json::Int(i) => Ok(*i as f64),
            // Non-finite floats serialize as null; accept the round-trip.
            Json::Null => Ok(f64::NAN),
            other => Err(type_err("number", other)),
        }
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, Error> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(type_err("string", other)),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(type_err("array", other)),
        }
    }
}

impl<T: FromJson> FromJson for Box<T> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        T::from_json(v).map(Box::new)
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Arr(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            other => Err(type_err("2-element array", other)),
        }
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Arr(items) if items.len() == 3 => Ok((
                A::from_json(&items[0])?,
                B::from_json(&items[1])?,
                C::from_json(&items[2])?,
            )),
            other => Err(type_err("3-element array", other)),
        }
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_json(val)?)))
                .collect(),
            other => Err(type_err("object", other)),
        }
    }
}

impl<V: FromJson> FromJson for HashMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, Error> {
        match v {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_json(val)?)))
                .collect(),
            other => Err(type_err("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_missing_vs_null() {
        let obj = crate::parse(r#"{"a": 1}"#).unwrap();
        assert_eq!(field::<u8>(&obj, "a"), Ok(1));
        assert!(field::<u8>(&obj, "b").is_err());
        assert_eq!(field::<Option<u8>>(&obj, "b"), Ok(None));
    }

    #[test]
    fn int_accepted_as_float() {
        assert_eq!(f64::from_json(&Json::Int(3)), Ok(3.0));
    }

    #[test]
    fn map_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1u8, 2]);
        let s = crate::to_string(&m);
        assert_eq!(crate::from_str::<BTreeMap<String, Vec<u8>>>(&s), Ok(m));
    }
}
