//! A strict recursive-descent JSON parser.
//!
//! Accepts exactly the JSON grammar (RFC 8259): no trailing commas, no
//! comments, no leading `+`, no bare NaN/Infinity. Depth is bounded so a
//! hostile input cannot overflow the stack.

use crate::{Error, Json};

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document (surrounding whitespace allowed).
pub fn parse(s: &str) -> Result<Json, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, Error> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, Error> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b't' => out.push('\t'),
            b'r' => out.push('\r'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'u' => {
                let hi = self.hex4()?;
                let cp = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require a following \uXXXX low half.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("invalid escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match c {
                b'0'..=b'9' => (c - b'0') as u32,
                b'a'..=b'f' => (c - b'a' + 10) as u32,
                b'A'..=b'F' => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: "0" or [1-9][0-9]*.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| self.err("unparseable float"))?;
            Ok(Json::Float(f))
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Json::Int(i)),
                // Out-of-range integers degrade to float like serde_json's
                // arbitrary-precision-off behaviour.
                Err(_) => {
                    let f: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
                    Ok(Json::Float(f))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, 2.5, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(|a| a.at(1)), Some(&Json::Float(2.5)));
        assert_eq!(
            v.get("a").and_then(|a| a.at(2)).and_then(|o| o.get("b")),
            Some(&Json::Null)
        );
        assert_eq!(v.get("c"), Some(&Json::Str("x".into())));
    }

    #[test]
    fn int_vs_float_distinguished() {
        assert_eq!(parse("3").unwrap(), Json::Int(3));
        assert_eq!(parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(parse("3e2").unwrap(), Json::Float(300.0));
        assert_eq!(parse("-0").unwrap(), Json::Int(0));
    }

    #[test]
    fn big_u64_survives() {
        let big = u64::MAX;
        let v = parse(&big.to_string()).unwrap();
        assert_eq!(v, Json::Int(big as i128));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "01", "1.", "+1", "nul", "\"\\x\"", "\"", "[1] []",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }
}
