//! The [`ToJson`] trait and implementations for std types.

use crate::Json;
use std::collections::{BTreeMap, HashMap};

/// Conversion into a [`Json`] value. Infallible by design: every value the
/// workspace serializes has a JSON image (non-finite floats map to `null`).
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i128)
            }
        }
    )*};
}
int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// HashMap keys sort before serialization so output is deterministic
/// regardless of hasher seed — required for byte-identical reports.
impl<V: ToJson> ToJson for HashMap<String, V> {
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_output_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u8);
        m.insert("a".to_string(), 1u8);
        assert_eq!(crate::to_string(&m), "{\"a\":1,\"b\":2}");
    }

    #[test]
    fn tuples_as_arrays() {
        assert_eq!(crate::to_string(&(1u8, 2.5f64)), "[1,2.5]");
        assert_eq!(crate::to_string(&(1u8, "x", true)), "[1,\"x\",true]");
    }

    #[test]
    fn slices_and_arrays() {
        let a = [1u8, 2, 3];
        assert_eq!(crate::to_string(&a), "[1,2,3]");
        assert_eq!(crate::to_string(&a[..2]), "[1,2]");
    }
}
