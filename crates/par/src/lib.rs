//! # moe-par
//!
//! A from-scratch, zero-dependency, deterministic fork/join executor for
//! the workspace, promoted out of the former `moe_tensor::par` module.
//!
//! Three primitives cover every parallel shape the benchmark, planner and
//! simulator stacks need:
//!
//! * [`map_collect`] — work-stealing indexed map with **ordered
//!   reduction**: `(0..n).map(body)` evaluated on a per-worker-deque
//!   work-stealing pool, with results merged back in **submission order**
//!   (by index), never in completion order. As long as `body(i)` is a
//!   pure function of `i` and its captured inputs, the output `Vec` is
//!   bit-identical for any worker count and any steal schedule.
//! * [`for_each_chunk_mut`] — split a mutable buffer into fixed-size
//!   chunks and process each with its global chunk index. Work is divided
//!   into **contiguous runs** of whole chunks, one run per worker; see
//!   the *determinism contract* below.
//! * [`map_collect_seeded`] — [`map_collect`] plus a splittable-seed
//!   adapter: each task receives a child seed derived from the parent
//!   seed and its **task index** via [`derive_seed`], never from the
//!   schedule, so stochastic tasks stay reproducible across thread
//!   counts.
//!
//! ## Determinism contract
//!
//! The executor guarantees schedule-independence, not magic:
//!
//! 1. **Ordered reduction.** [`map_collect`] returns results indexed by
//!    submission order. Two runs with different `MOE_THREADS` values (or
//!    different steal interleavings) observe the same `Vec<R>` provided
//!    `body` is deterministic per index.
//! 2. **Contiguous runs.** [`for_each_chunk_mut`] assigns each worker a
//!    contiguous run of whole chunks (it deliberately does *not* steal):
//!    chunk `i` always receives the same `(index, data)` pair, and chunks
//!    never overlap, so the buffer's final contents are identical for any
//!    worker count. Float reductions *within* one chunk happen on one
//!    thread in index order; callers must not reduce *across* chunks in
//!    completion order.
//! 3. **Index-derived seeds.** Parallel stochastic tasks must derive
//!    their RNG stream from the task index ([`map_collect_seeded`] /
//!    [`derive_seed`]), never from a shared mutable generator, which
//!    would make the stream depend on execution order.
//!
//! Worker count resolves, in priority order: [`set_workers_for_test`]
//! override → `MOE_THREADS` environment variable (re-read on every call,
//! so setting it after first use is honored) → host parallelism.
//!
//! Panics in task bodies are captured on the worker thread and re-raised
//! on the caller via [`std::panic::resume_unwind`] after all workers have
//! been joined — no `unsafe`, no aborts, no leaked threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod seed;
mod workers;

pub use executor::{for_each_chunk_mut, map_collect, map_collect_seeded};
pub use seed::derive_seed;
pub use workers::{set_workers_for_test, workers};
