//! Splittable-seed derivation for parallel tasks.
//!
//! Every parallel stochastic task must derive its RNG stream from its
//! **task index**, never from a shared generator whose consumption order
//! would depend on the schedule. This module is the single place that
//! mixing is defined; `moe_tensor::rng` re-exports it so existing
//! call sites keep working.

/// Derive an independent child seed from a parent seed and a label
/// (typically a task index).
///
/// This is a cheap stand-in for proper stream splitting: the label is
/// mixed into the seed with SplitMix64 finalization, which is enough to
/// decorrelate streams for benchmarking purposes (we never need
/// cryptographic quality). The function is pure, so a task's stream
/// depends only on `(parent, label)` — not on which worker ran it or
/// when.
pub fn derive_seed(parent: u64, label: u64) -> u64 {
    let mut z = parent ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_decorrelates_labels() {
        let s = 7;
        assert_ne!(derive_seed(s, 0), derive_seed(s, 1));
        assert_ne!(derive_seed(s, 1), derive_seed(s, 2));
    }

    #[test]
    fn derive_seed_is_pure() {
        assert_eq!(derive_seed(42, 9), derive_seed(42, 9));
    }

    #[test]
    fn derive_seed_golden() {
        // Pinned values: changing the mixing constants would silently
        // reshuffle every seeded workload in the workspace.
        assert_eq!(derive_seed(0, 0), 0);
        assert_ne!(derive_seed(0, 1), derive_seed(1, 0));
    }
}
