//! Worker-count resolution: test override, `MOE_THREADS`, host default.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide test override; 0 means unset.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Cached host parallelism — the only component that is safe to cache,
/// because it cannot change for the life of the process. 0 = unprobed.
static HOST: AtomicUsize = AtomicUsize::new(0);

/// Worker count used by the executor. Always at least 1.
///
/// Resolution order:
///
/// 1. the [`set_workers_for_test`] override, if set;
/// 2. the `MOE_THREADS` environment variable — **re-read on every
///    call**, so a driver or test that sets it after the first use is
///    honored (the old `moe_tensor::par` cached the env read once and
///    silently ignored later changes);
/// 3. [`std::thread::available_parallelism`], probed once and cached.
pub fn workers() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    if let Some(n) = std::env::var("MOE_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    let cached = HOST.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    HOST.store(n, Ordering::Relaxed);
    n
}

/// Force the worker count for the current process, taking priority over
/// `MOE_THREADS` and the host default. Pass 0 to clear the override.
///
/// This exists for determinism gates that sweep thread counts within one
/// process: mutating the environment from a multi-threaded test harness
/// is racy, an atomic override is not. The executor's output is
/// schedule-independent, so flipping this mid-process can change timing
/// only, never results.
pub fn set_workers_for_test(n: usize) {
    OVERRIDE.store(n, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_at_least_one() {
        assert!(workers() >= 1);
    }

    #[test]
    fn override_wins_and_clears() {
        // Serialized against other override users via the executor test
        // lock (this module's only mutable state is the override atomic).
        let _guard = crate::executor::test_lock();
        set_workers_for_test(5);
        assert_eq!(workers(), 5);
        set_workers_for_test(0);
        assert!(workers() >= 1);
    }
}
