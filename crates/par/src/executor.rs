//! The work-stealing fork/join executor and the contiguous-run chunk
//! helper. See the crate docs for the determinism contract.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::seed::derive_seed;
use crate::workers::workers;

/// Lock a deque, ignoring poisoning: the queues hold plain index ranges,
/// which cannot be left in a broken state by a panicking worker (the
/// panic itself is propagated separately after join).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Steal one block from the back of a sibling's deque. The probe order
/// (`me+1`, `me+2`, …) is deterministic; victim choice affects only
/// scheduling, never results, so no randomness is needed here.
fn steal(queues: &[Mutex<VecDeque<Range<usize>>>], me: usize) -> Option<Range<usize>> {
    for k in 1..queues.len() {
        let victim = (me + k) % queues.len();
        if let Some(block) = lock(&queues[victim]).pop_back() {
            return Some(block);
        }
    }
    None
}

/// Parallel indexed map with ordered reduction: returns
/// `(0..n).map(|i| body(i))` collected **in index order**, evaluated on
/// a work-stealing pool of [`workers()`] threads.
///
/// Index blocks are dealt contiguously to per-worker deques; each worker
/// pops its own front and steals from a sibling's back when idle.
/// Results are carried back tagged with their index and merged by index,
/// so the output is bit-identical for any worker count and any steal
/// interleaving, provided `body` is deterministic per index.
///
/// A panic in `body` is re-raised on the caller after every worker has
/// been joined (first panic wins); remaining work may be skipped.
pub fn map_collect<R, F>(n: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = workers().min(n);
    if threads <= 1 {
        return (0..n).map(body).collect();
    }
    // Grain: aim for ~8 blocks per worker, so thieves can find work
    // without turning every index into a synchronization point.
    let grain = (n / (threads * 8)).max(1);
    let queues: Vec<Mutex<VecDeque<Range<usize>>>> = (0..threads)
        .map(|w| {
            let lo = w * n / threads;
            let hi = (w + 1) * n / threads;
            let mut q = VecDeque::new();
            let mut start = lo;
            while start < hi {
                let end = (start + grain).min(hi);
                q.push_back(start..end);
                start = end;
            }
            Mutex::new(q)
        })
        .collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let queues = &queues;
                let body = &body;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Pop in its own statement so the guard on our
                        // deque drops before stealing or running the
                        // body: a `while let` scrutinee would keep the
                        // lock alive for the whole iteration, making
                        // two idle workers that probe each other a
                        // lock-order deadlock.
                        let own = lock(&queues[w]).pop_front();
                        let Some(block) = own.or_else(|| steal(queues, w)) else {
                            break;
                        };
                        for i in block {
                            local.push((i, body(i)));
                        }
                    }
                    local
                })
            })
            .collect();

        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut first_panic = None;
        for handle in handles {
            match handle.join() {
                Ok(pairs) => {
                    for (i, r) in pairs {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        let out: Vec<R> = slots.into_iter().flatten().collect();
        assert_eq!(out.len(), n, "work-stealing executor lost results");
        out
    })
}

/// [`map_collect`] with a splittable seed: `body(i, seed_i)` where
/// `seed_i = derive_seed(parent_seed, i)`. Each task's RNG stream is a
/// pure function of its index, never of the schedule.
pub fn map_collect_seeded<R, F>(n: usize, parent_seed: u64, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, u64) -> R + Sync,
{
    map_collect(n, |i| body(i, derive_seed(parent_seed, i as u64)))
}

/// Apply `body(chunk_index, chunk)` to every `chunk_size`-sized chunk of
/// `data` (last chunk may be short), in parallel across **contiguous
/// runs** of chunks — one run per worker, no stealing. Equivalent to
/// `data.chunks_mut(chunk_size).enumerate().for_each(..)` but
/// multi-threaded; the buffer's final contents are identical either way
/// because chunk `i` always receives the same `(index, data)` pair and
/// chunks never overlap (see the crate-level determinism contract).
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_size: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert!(chunk_size > 0, "chunk_size must be nonzero");
    let n_chunks = data.len().div_ceil(chunk_size.max(1));
    let threads = workers().min(n_chunks);
    if threads <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_size.max(1)).enumerate() {
            body(i, chunk);
        }
        return;
    }
    // Contiguous runs of whole chunks per worker.
    let chunks_per_worker = n_chunks.div_ceil(threads);
    let run_len = chunks_per_worker * chunk_size;
    std::thread::scope(|scope| {
        for (w, run) in data.chunks_mut(run_len).enumerate() {
            let body = &body;
            scope.spawn(move || {
                let base = w * chunks_per_worker;
                for (j, chunk) in run.chunks_mut(chunk_size).enumerate() {
                    body(base + j, chunk);
                }
            });
        }
    });
}

/// Serialize tests that mutate the process-wide worker override.
/// Poisoning is ignored: `should_panic` tests hold this lock while
/// panicking by design.
#[cfg(test)]
pub(crate) fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    lock(&LOCK)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workers::set_workers_for_test;

    /// Run `f` under each forced worker count, restoring the default.
    fn with_counts(counts: &[usize], f: impl Fn()) {
        let _guard = test_lock();
        for &c in counts {
            set_workers_for_test(c);
            f();
        }
        set_workers_for_test(0);
    }

    #[test]
    fn map_collect_ordered_across_worker_counts() {
        let want: Vec<usize> = (0..1000).map(|i| i * i).collect();
        with_counts(&[1, 2, 3, 8], || {
            assert_eq!(map_collect(1000, |i| i * i), want);
        });
    }

    #[test]
    fn map_collect_empty_and_tiny() {
        assert!(map_collect(0, |i| i).is_empty());
        assert_eq!(map_collect(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn map_collect_more_workers_than_items() {
        with_counts(&[16], || {
            assert_eq!(map_collect(3, |i| i * 10), vec![0, 10, 20]);
        });
    }

    #[test]
    fn seeded_map_is_schedule_independent() {
        let serial: Vec<u64> = (0..64).map(|i| derive_seed(99, i as u64)).collect();
        with_counts(&[1, 4, 8], || {
            let got = map_collect_seeded(64, 99, |_, seed| seed);
            assert_eq!(got, serial);
        });
    }

    #[test]
    #[should_panic(expected = "task 37 exploded")]
    fn panics_propagate_to_caller() {
        let _guard = test_lock();
        set_workers_for_test(4);
        // The executor must re-raise the worker's panic on the caller
        // thread after joining everyone — not deadlock, not abort.
        let _ = map_collect(100, |i| {
            assert!(i != 37, "task {i} exploded");
            i
        });
    }

    #[test]
    fn chunked_matches_serial() {
        let mut a: Vec<u64> = (0..1000).collect();
        let mut b = a.clone();
        {
            let _guard = test_lock();
            set_workers_for_test(4);
            for_each_chunk_mut(&mut a, 7, |i, c| {
                for v in c.iter_mut() {
                    *v = v.wrapping_mul(31).wrapping_add(i as u64);
                }
            });
            set_workers_for_test(0);
        }
        b.chunks_mut(7).enumerate().for_each(|(i, c)| {
            for v in c.iter_mut() {
                *v = v.wrapping_mul(31).wrapping_add(i as u64);
            }
        });
        assert_eq!(a, b);
    }

    #[test]
    fn chunked_empty_input() {
        let mut empty: Vec<u8> = vec![];
        for_each_chunk_mut(&mut empty, 4, |_, _| {});
    }

    #[test]
    fn idle_workers_do_not_deadlock() {
        // Regression: workers used to hold their own deque's lock while
        // probing victims (a `while let` scrutinee keeps the guard
        // alive), so two simultaneously-idle workers could cycle-wait
        // forever. Many tiny rounds make the all-idle shutdown race
        // overwhelmingly likely to occur at least once.
        with_counts(&[4, 8], || {
            for round in 0..200usize {
                let got = map_collect(6, move |i| i + round);
                let want: Vec<usize> = (0..6).map(|i| i + round).collect();
                assert_eq!(got, want);
            }
        });
    }

    #[test]
    fn stealing_actually_happens_under_skew() {
        // One pathologically slow early block forces later blocks of the
        // same worker's span to be stolen; ordered reduction must still
        // hold.
        with_counts(&[4], || {
            let got = map_collect(256, |i| {
                if i == 0 {
                    // Busy work, no wall-clock: deterministic spin.
                    let mut acc = 0u64;
                    for k in 0..2_000_000u64 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    assert!(acc != 1);
                }
                i as u64
            });
            let want: Vec<u64> = (0..256).collect();
            assert_eq!(got, want);
        });
    }
}
