//! # moe-inference-bench
//!
//! Umbrella crate for the MoE-Inference-Bench reproduction. Re-exports the
//! public API of every subsystem so examples and downstream users can depend
//! on a single crate:
//!
//! * [`tensor`] — dense/quantized kernels ([`moe_tensor`])
//! * [`model`] — architecture registry and parameter accounting ([`moe_model`])
//! * [`gpusim`] — H100/CS-3 roofline + discrete-event performance model ([`moe_gpusim`])
//! * [`engine`] — functional MoE transformer executor ([`moe_engine`])
//! * [`runtime`] — serving engine with continuous batching ([`moe_runtime`])
//! * [`cluster`] — multi-replica fleet simulator: router, faults, control hook ([`moe_cluster`])
//! * [`ctrl`] — online control plane: SLO-burn monitors, re-planning, canaries ([`moe_ctrl`])
//! * [`plan`] — offline deployment planner over the joint config space ([`moe_plan`])
//! * [`eval`] — accuracy-evaluation substrate ([`moe_eval`])
//! * [`mod@bench`] — experiment harness regenerating every paper table/figure ([`moe_bench`])
//! * [`trace`] — structured tracing on the simulated clock, Chrome-trace export ([`moe_trace`])
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system
//! inventory and the per-experiment index, and `docs/ARCHITECTURE.md` /
//! `docs/OBSERVABILITY.md` for the crate map and tracing story.

#![forbid(unsafe_code)]

pub use moe_bench as bench;
pub use moe_cluster as cluster;
pub use moe_ctrl as ctrl;
pub use moe_engine as engine;
pub use moe_eval as eval;
pub use moe_gpusim as gpusim;
pub use moe_model as model;
pub use moe_plan as plan;
pub use moe_runtime as runtime;
pub use moe_tensor as tensor;
pub use moe_trace as trace;
