//! Integration tests over the experiment harness: every registered
//! table/figure regenerates, produces well-formed reports, and serializes.

use moe_bench::{all_experiment_ids, run_experiment};

#[test]
fn every_paper_artifact_is_registered() {
    let ids = all_experiment_ids();
    // Table 1 plus figures 1 and 3-18 (fig 2 is a schematic).
    let expected = [
        "table1",
        "fig1",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "ablations",
        "ext-placement",
        "ext-multinode",
        "ext-qps",
        "ext-cluster",
        "ext-plan",
        "ext-scale",
        "ext-ctrl",
        "ext-mem",
        "ext-cap",
    ];
    assert_eq!(ids, expected);
}

#[test]
fn unknown_experiment_is_none() {
    assert!(run_experiment("fig99", true).is_none());
}

#[test]
fn all_experiments_produce_wellformed_reports() {
    for id in all_experiment_ids() {
        let report = run_experiment(id, true).expect("registered id runs");
        assert_eq!(report.id, id);
        assert!(!report.title.is_empty());
        assert!(!report.tables.is_empty(), "{id}: no tables");
        for table in &report.tables {
            assert!(!table.columns.is_empty(), "{id}/{}", table.name);
            assert!(!table.rows.is_empty(), "{id}/{}: empty table", table.name);
            for row in &table.rows {
                assert_eq!(
                    row.len(),
                    table.columns.len(),
                    "{id}/{}: ragged row",
                    table.name
                );
            }
        }
        // Text rendering and JSON serialization never fail.
        let text = report.render();
        assert!(text.contains(&report.id));
        let json = moe_json::to_string(&report);
        assert!(json.len() > 2);
    }
}

#[test]
fn reports_are_deterministic() {
    for id in ["table1", "fig1", "fig5", "fig13", "fig17"] {
        let a = run_experiment(id, true).expect("registered");
        let b = run_experiment(id, true).expect("registered");
        assert_eq!(a, b, "{id} not reproducible");
    }
}

#[test]
fn csv_export_roundtrips_columns() {
    let report = run_experiment("table1", true).expect("registered");
    let csv = report.tables[0].to_csv();
    let header = csv.lines().next().expect("non-empty CSV");
    assert_eq!(header.split(',').count(), report.tables[0].columns.len());
    assert_eq!(csv.lines().count(), 1 + report.tables[0].rows.len());
}
