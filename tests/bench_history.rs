//! Tier-1 contract over the committed benchmark history files.
//!
//! `BENCH_cluster.json` records the cluster core's speed *trajectory*:
//! the committed pre-event-heap baseline first, then one entry per
//! rebuilt core. The file is append-only — later sessions re-measure
//! and append, but the baseline entry is the fixed origin every
//! `speedup_vs_baseline` is computed against. If it moved or mutated,
//! every historical ratio in docs/SCALE.md and ROADMAP.md would silently
//! change meaning.

use moe_json::Json;

fn repo_file(name: &str) -> String {
    let path = format!("{}/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn number(v: Option<&Json>) -> Option<f64> {
    match v {
        Some(Json::Int(i)) => Some(*i as f64),
        Some(Json::Float(f)) => Some(*f),
        _ => None,
    }
}

fn string(v: Option<&Json>) -> Option<&str> {
    match v {
        Some(Json::Str(s)) => Some(s),
        _ => None,
    }
}

/// Committed pre-heap baseline (commit 1a3a2ba): the linear five-source
/// scan core at 119,150 events/s. Mirrors `BASELINE_EVENTS_PER_S` in
/// `crates/bench/benches/cluster.rs` — the bench harness re-asserts the
/// same constant when it rewrites the file.
const PRE_HEAP_BASELINE_EVENTS_PER_S: f64 = 119_150.0;

#[test]
fn bench_cluster_history_keeps_the_pre_heap_baseline_first() {
    let doc = moe_json::parse(&repo_file("BENCH_cluster.json")).expect("well-formed JSON");
    let trajectory = match doc.get("trajectory") {
        Some(Json::Arr(items)) => items,
        other => panic!("trajectory must be an array, got {other:?}"),
    };
    assert!(
        trajectory.len() >= 2,
        "trajectory must keep the baseline plus at least one measured core"
    );

    let baseline = &trajectory[0];
    let label = string(baseline.get("core")).expect("baseline core label");
    assert!(
        label.contains("pre event-heap"),
        "first trajectory record must stay the pre-heap baseline, got {label:?}"
    );
    let events_per_s = number(baseline.get("events_per_s")).expect("baseline events_per_s");
    assert_eq!(
        events_per_s, PRE_HEAP_BASELINE_EVENTS_PER_S,
        "the committed baseline rate is immutable"
    );
    assert_eq!(
        baseline.get("committed"),
        Some(&Json::Bool(true)),
        "the baseline entry is a committed measurement"
    );

    // Every later entry measures a rebuilt core against that origin.
    for (i, entry) in trajectory.iter().enumerate().skip(1) {
        let rate = number(entry.get("events_per_s"))
            .unwrap_or_else(|| panic!("trajectory[{i}] lacks events_per_s"));
        assert!(rate > 0.0, "trajectory[{i}] rate must be positive");
        if let Some(speedup) = number(entry.get("speedup_vs_baseline")) {
            let expected = rate / PRE_HEAP_BASELINE_EVENTS_PER_S;
            assert!(
                (speedup - expected).abs() <= 1e-6 * expected,
                "trajectory[{i}] speedup {speedup} disagrees with rate/baseline {expected}"
            );
        }
    }
}

/// Original single-core measurement of the 26-experiment registry: the
/// frozen origin of the `BENCH_par.json` history. If it moved, the
/// harness-speed narrative in EXPERIMENTS.md would silently change
/// meaning — the bench carries `committed: true` entries forward
/// verbatim and only appends.
const PAR_ORIGIN_SERIAL_S: f64 = 2.760874293;
const PAR_ORIGIN_EXPERIMENTS: f64 = 26.0;

#[test]
fn bench_par_history_keeps_the_origin_first_and_appends() {
    let doc = moe_json::parse(&repo_file("BENCH_par.json")).expect("well-formed JSON");
    let history = match doc.get("history") {
        Some(Json::Arr(items)) => items,
        other => panic!("history must be an array, got {other:?}"),
    };
    assert!(
        history.len() >= 2,
        "history must keep the origin plus at least one re-measurement"
    );

    let origin = &history[0];
    assert_eq!(
        origin.get("committed"),
        Some(&Json::Bool(true)),
        "first history entry must stay the committed origin"
    );
    assert_eq!(
        number(origin.get("serial_s")),
        Some(PAR_ORIGIN_SERIAL_S),
        "the committed origin measurement is immutable"
    );
    assert_eq!(
        number(origin.get("experiments")),
        Some(PAR_ORIGIN_EXPERIMENTS)
    );

    // Later entries append in registry-growth order: the experiment
    // count never shrinks along the history.
    let mut last_experiments = PAR_ORIGIN_EXPERIMENTS;
    for (i, entry) in history.iter().enumerate() {
        let experiments = number(entry.get("experiments"))
            .unwrap_or_else(|| panic!("history[{i}] lacks experiments"));
        assert!(
            experiments >= last_experiments,
            "history[{i}] experiment count went backwards: {experiments} < {last_experiments}"
        );
        last_experiments = experiments;
        assert!(number(entry.get("serial_s")).unwrap_or(0.0) > 0.0);
        assert!(number(entry.get("parallel_s")).unwrap_or(0.0) > 0.0);
    }
}

#[test]
fn bench_par_history_records_host_core_count() {
    let doc = moe_json::parse(&repo_file("BENCH_par.json")).expect("well-formed JSON");
    let history = match doc.get("history") {
        Some(Json::Arr(items)) => items,
        other => panic!("history must be an array, got {other:?}"),
    };
    for (i, entry) in history.iter().enumerate() {
        let cores = number(entry.get("host_cores"))
            .unwrap_or_else(|| panic!("history[{i}] lacks host_cores"));
        assert!(cores >= 1.0);
        // The note must state the core count the entry was measured on,
        // so a future multi-core re-measurement can't reuse a stale
        // narrative.
        let note = string(entry.get("note")).unwrap_or_else(|| panic!("history[{i}] lacks note"));
        assert!(
            note.contains(&format!("{}-core", cores as u64)),
            "history[{i}] note must state its measured core count, got {note:?}"
        );
    }
}
