//! Tier-1 determinism gate: the same experiment run twice in one process
//! must produce byte-identical JSON reports.
//!
//! This is the end-to-end check behind the `no-unseeded-rng` and
//! `no-wall-clock` lint rules: if any entropy or host-timing leaked into
//! the pipeline (model init, placement, cost model, report rendering),
//! the second run would differ somewhere in the rendered bytes.

/// Reduced-scale Fig. 5 sweep (batch x top-k throughput grid), twice.
#[test]
fn fig5_fast_is_byte_identical_across_runs() {
    let render = || {
        let report = moe_bench::run_experiment("fig5", true).expect("fig5 is registered");
        moe_json::to_string_pretty(&report)
    };
    let first = render();
    let second = render();
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "fig5 fast sweep is not deterministic: rendered JSON differs between runs"
    );
}

/// The report also survives a parse round-trip unchanged, so the bytes on
/// disk are a faithful, stable encoding of the measured grid.
#[test]
fn fig5_fast_report_roundtrips_exactly() {
    let report = moe_bench::run_experiment("fig5", true).expect("fig5 is registered");
    let json = moe_json::to_string_pretty(&report);
    let back: moe_bench::ExperimentReport = moe_json::from_str(&json).expect("parses back");
    assert_eq!(moe_json::to_string_pretty(&back), json);
}

fn traced_fig5() -> (String, String) {
    let mut tracer = moe_trace::Tracer::new(Box::new(moe_trace::MemorySink::new()));
    let report =
        moe_bench::run_experiment_traced("fig5", true, &mut tracer).expect("fig5 is registered");
    let trace = moe_trace::chrome_trace_json(&tracer.snapshot(), tracer.tracks());
    (moe_json::to_string_pretty(&report), trace)
}

/// Same-seed traced runs must render byte-identical Chrome-trace JSON —
/// the trace is a pure function of the simulated timeline, with no
/// wall-clock or entropy leaking into timestamps or ordering.
#[test]
fn fig5_fast_trace_is_byte_identical_across_runs() {
    let (report1, trace1) = traced_fig5();
    let (report2, trace2) = traced_fig5();
    assert!(trace1.contains("\"traceEvents\""));
    assert_eq!(report1, report2);
    assert_eq!(
        trace1, trace2,
        "fig5 Chrome-trace JSON differs between same-seed runs"
    );
}

/// Tracing must observe, never perturb: the report rendered from a traced
/// run equals the untraced report byte for byte (a zero-byte diff), and
/// the trace itself parses as well-formed JSON.
#[test]
fn fig5_fast_tracing_does_not_perturb_report() {
    let plain = moe_json::to_string_pretty(
        &moe_bench::run_experiment("fig5", true).expect("fig5 is registered"),
    );
    let (traced, trace) = traced_fig5();
    assert_eq!(plain, traced, "tracing changed the report bytes");
    let parsed = moe_json::parse(&trace).expect("trace is well-formed JSON");
    assert!(parsed.get("traceEvents").is_some());
}

/// The recorded spans must account for (essentially all of, and at least
/// 95% of) the simulated timeline on both the engine and bench tracks.
#[test]
fn fig5_fast_trace_covers_simulated_time() {
    let mut tracer = moe_trace::Tracer::new(Box::new(moe_trace::MemorySink::new()));
    moe_bench::run_experiment_traced("fig5", true, &mut tracer).expect("fig5 is registered");
    let events = tracer.snapshot();
    assert!(!events.is_empty());
    for track in [moe_trace::ENGINE_TRACK, moe_trace::BENCH_TRACK] {
        let coverage = moe_trace::timeline_coverage(&events, track);
        assert!(coverage >= 0.95, "track {track}: coverage {coverage}");
    }
}

fn traced_cluster() -> (String, String) {
    let mut tracer = moe_trace::Tracer::new(Box::new(moe_trace::MemorySink::new()));
    let report = moe_bench::run_experiment_traced("ext-cluster", true, &mut tracer)
        .expect("ext-cluster is registered");
    let trace = moe_trace::chrome_trace_json(&tracer.snapshot(), tracer.tracks());
    (moe_json::to_string_pretty(&report), trace)
}

/// The multi-replica cluster simulator sits on top of every source of
/// nondeterminism this gate exists to catch — seeded arrival generation,
/// router tie-breaking, fault schedules, and event-loop ordering across
/// replicas. Same seed, twice, must render byte-identical report JSON
/// *and* byte-identical Chrome-trace JSON.
#[test]
fn ext_cluster_fast_report_and_trace_are_byte_identical_across_runs() {
    let (report1, trace1) = traced_cluster();
    let (report2, trace2) = traced_cluster();
    assert!(trace1.contains("\"traceEvents\""));
    assert_eq!(
        report1, report2,
        "ext-cluster report JSON differs between same-seed runs"
    );
    assert_eq!(
        trace1, trace2,
        "ext-cluster Chrome-trace JSON differs between same-seed runs"
    );
}

fn traced_plan() -> (String, String) {
    let mut tracer = moe_trace::Tracer::new(Box::new(moe_trace::MemorySink::new()));
    let report = moe_bench::run_experiment_traced("ext-plan", true, &mut tracer)
        .expect("ext-plan is registered");
    let trace = moe_trace::chrome_trace_json(&tracer.snapshot(), tracer.tracks());
    (moe_json::to_string_pretty(&report), trace)
}

/// The planner composes every layer of the stack — workload generation,
/// analytic search, and cluster refinement. Same seed, twice, must render
/// byte-identical report JSON *and* byte-identical Chrome-trace JSON.
#[test]
fn ext_plan_fast_report_and_trace_are_byte_identical_across_runs() {
    let (report1, trace1) = traced_plan();
    let (report2, trace2) = traced_plan();
    assert!(trace1.contains("\"traceEvents\""));
    assert_eq!(
        report1, report2,
        "ext-plan report JSON differs between same-seed runs"
    );
    assert_eq!(
        trace1, trace2,
        "ext-plan Chrome-trace JSON differs between same-seed runs"
    );
}

/// Planner tracing must observe, never perturb: the traced report equals
/// the untraced one byte for byte, and the trace carries the planner
/// track the planner claims to emit.
#[test]
fn ext_plan_fast_tracing_does_not_perturb_report() {
    let plain = moe_json::to_string_pretty(
        &moe_bench::run_experiment("ext-plan", true).expect("ext-plan is registered"),
    );
    let (traced, trace) = traced_plan();
    assert_eq!(plain, traced, "tracing changed the ext-plan report");
    let parsed = moe_json::parse(&trace).expect("trace is well-formed JSON");
    assert!(parsed.get("traceEvents").is_some());
    assert!(
        trace.contains("planner"),
        "planner track missing from trace"
    );
}

/// Cluster tracing must observe, never perturb: the traced report equals
/// the untraced one byte for byte, and the trace carries the router and
/// replica tracks the cluster claims to emit.
#[test]
fn ext_cluster_fast_tracing_does_not_perturb_report() {
    let plain = moe_json::to_string_pretty(
        &moe_bench::run_experiment("ext-cluster", true).expect("ext-cluster is registered"),
    );
    let (traced, trace) = traced_cluster();
    assert_eq!(plain, traced, "tracing changed the ext-cluster report");
    let parsed = moe_json::parse(&trace).expect("trace is well-formed JSON");
    assert!(parsed.get("traceEvents").is_some());
    assert!(trace.contains("router"), "router track missing from trace");
    assert!(trace.contains("replica 0"), "replica tracks missing");
}

/// Full `moe-bench all --fast` pass: every report plus the composed
/// multi-experiment Chrome trace, rendered to bytes.
fn traced_run_all() -> (String, String) {
    let mut tracer = moe_trace::Tracer::new(Box::new(moe_trace::MemorySink::new()));
    let reports = moe_bench::run_all(true, &mut tracer);
    let trace = moe_trace::chrome_trace_json(&tracer.snapshot(), tracer.tracks());
    (moe_json::to_string_pretty(&reports), trace)
}

/// Everything the parallel drivers produce, for one forced thread count.
struct MatrixSample {
    threads: usize,
    all_reports: String,
    all_trace: String,
    plan_report: String,
    plan_trace: String,
    cluster_report: String,
    cluster_trace: String,
}

/// Tests that sweep the worker-count override must not interleave: the
/// override is process-global, so two concurrent sweeps would clobber
/// each other's forced counts mid-run.
fn worker_override_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn matrix_sample(threads: usize) -> MatrixSample {
    // The atomic override stands in for `MOE_THREADS`: mutating the
    // environment from a threaded test harness is racy, the override is
    // not, and `workers()` resolves it ahead of the env variable.
    moe_par::set_workers_for_test(threads);
    let (all_reports, all_trace) = traced_run_all();
    let (plan_report, plan_trace) = traced_plan();
    let (cluster_report, cluster_trace) = traced_cluster();
    moe_par::set_workers_for_test(0);
    MatrixSample {
        threads,
        all_reports,
        all_trace,
        plan_report,
        plan_trace,
        cluster_report,
        cluster_trace,
    }
}

/// The headline invariant of the `moe-par` rollout: the number of worker
/// threads is invisible in every produced byte. `moe-bench all --fast`
/// (all 25 reports *and* the composed multi-experiment trace), `ext-plan`
/// and `ext-cluster` must render identically for `MOE_THREADS` = 1, 2
/// and 8 — the work-stealing schedule may vary, the ordered reduction
/// and base-offset trace composition must hide it completely.
#[test]
fn thread_count_matrix_is_byte_identical() {
    let _guard = worker_override_lock();
    let baseline = matrix_sample(1);
    assert!(!baseline.all_reports.is_empty());
    assert!(baseline.all_trace.contains("\"traceEvents\""));
    for threads in [2usize, 8] {
        let sample = matrix_sample(threads);
        let pairs = [
            ("all reports", &baseline.all_reports, &sample.all_reports),
            ("all trace", &baseline.all_trace, &sample.all_trace),
            (
                "ext-plan report",
                &baseline.plan_report,
                &sample.plan_report,
            ),
            ("ext-plan trace", &baseline.plan_trace, &sample.plan_trace),
            (
                "ext-cluster report",
                &baseline.cluster_report,
                &sample.cluster_report,
            ),
            (
                "ext-cluster trace",
                &baseline.cluster_trace,
                &sample.cluster_trace,
            ),
        ];
        for (what, base, got) in pairs {
            assert_eq!(
                base, got,
                "{what} differs between {} and {} worker thread(s)",
                baseline.threads, sample.threads
            );
        }
    }
}

fn traced_ctrl() -> (String, String) {
    let mut tracer = moe_trace::Tracer::new(Box::new(moe_trace::MemorySink::new()));
    let report = moe_bench::run_experiment_traced("ext-ctrl", true, &mut tracer)
        .expect("ext-ctrl is registered");
    let trace = moe_trace::chrome_trace_json(&tracer.snapshot(), tracer.tracks());
    (moe_json::to_string_pretty(&report), trace)
}

/// The control plane adds the last sources of nondeterminism this gate
/// guards against: monitor windows fed from streaming histograms, a
/// warm-started re-planner invoked mid-run, canary routing between plan
/// generations, live replica add/drain, and seeded spot preemptions —
/// all inside the event heap, with the static ladder fanned out on the
/// work-stealing pool. Same seed must render byte-identical report JSON
/// *and* byte-identical Chrome-trace JSON for `MOE_THREADS` = 1, 2 and
/// 8, and across repeated runs at the same count.
#[test]
fn ext_ctrl_fast_report_and_trace_are_byte_identical_across_thread_counts() {
    let _guard = worker_override_lock();
    let mut renders = Vec::new();
    for threads in [1usize, 1, 2, 8] {
        moe_par::set_workers_for_test(threads);
        renders.push((threads, traced_ctrl()));
    }
    moe_par::set_workers_for_test(0);
    let (_, (base_report, base_trace)) = &renders[0];
    assert!(base_trace.contains("\"traceEvents\""));
    assert!(base_report.contains("Headline"));
    for (threads, (report, trace)) in &renders[1..] {
        assert_eq!(
            base_report, report,
            "ext-ctrl report differs between 1 and {threads} worker thread(s)"
        );
        assert_eq!(
            base_trace, trace,
            "ext-ctrl trace differs between 1 and {threads} worker thread(s)"
        );
    }
}

fn traced_mem() -> (String, String) {
    let mut tracer = moe_trace::Tracer::new(Box::new(moe_trace::MemorySink::new()));
    let report = moe_bench::run_experiment_traced("ext-mem", true, &mut tracer)
        .expect("ext-mem is registered");
    let trace = moe_trace::chrome_trace_json(&tracer.snapshot(), tracer.tracks());
    (moe_json::to_string_pretty(&report), trace)
}

/// The residency/offload family spans the whole derivation chain this
/// gate protects: a seeded engine generation run (trace capture), the
/// transition-table replay, hot-set selection, analytic offload pricing,
/// and two full planner searches. Same seed must render byte-identical
/// report JSON *and* byte-identical Chrome-trace JSON for `MOE_THREADS`
/// = 1, 2 and 8, and across repeated runs at the same count.
#[test]
fn ext_mem_fast_report_and_trace_are_byte_identical_across_thread_counts() {
    let _guard = worker_override_lock();
    let mut renders = Vec::new();
    for threads in [1usize, 1, 2, 8] {
        moe_par::set_workers_for_test(threads);
        renders.push((threads, traced_mem()));
    }
    moe_par::set_workers_for_test(0);
    let (_, (base_report, base_trace)) = &renders[0];
    assert!(base_report.contains("cost cliff"));
    for (threads, (report, trace)) in &renders[1..] {
        assert_eq!(
            base_report, report,
            "ext-mem report differs between 1 and {threads} worker thread(s)"
        );
        assert_eq!(
            base_trace, trace,
            "ext-mem trace differs between 1 and {threads} worker thread(s)"
        );
    }
}

fn traced_cap() -> (String, String) {
    let mut tracer = moe_trace::Tracer::new(Box::new(moe_trace::MemorySink::new()));
    let report = moe_bench::run_experiment_traced("ext-cap", true, &mut tracer)
        .expect("ext-cap is registered");
    let trace = moe_trace::chrome_trace_json(&tracer.snapshot(), tracer.tracks());
    (moe_json::to_string_pretty(&report), trace)
}

/// The device-zoo/CAP family covers the redesigned `DeviceProfile` API
/// end to end: registry lookups, per-class feasibility, a mixed-fleet
/// `plan_fleet` blend (whose composition enumeration and Pareto filter
/// must not depend on worker count), and bandwidth-scaled profile
/// variants. Same seed must render byte-identical report JSON *and*
/// byte-identical Chrome-trace JSON for `MOE_THREADS` = 1, 2 and 8, and
/// across repeated runs at the same count.
#[test]
fn ext_cap_fast_report_and_trace_are_byte_identical_across_thread_counts() {
    let _guard = worker_override_lock();
    let mut renders = Vec::new();
    for threads in [1usize, 1, 2, 8] {
        moe_par::set_workers_for_test(threads);
        renders.push((threads, traced_cap()));
    }
    moe_par::set_workers_for_test(0);
    let (_, (base_report, base_trace)) = &renders[0];
    assert!(base_report.contains("bandwidth knee"));
    for (threads, (report, trace)) in &renders[1..] {
        assert_eq!(
            base_report, report,
            "ext-cap report differs between 1 and {threads} worker thread(s)"
        );
        assert_eq!(
            base_trace, trace,
            "ext-cap trace differs between 1 and {threads} worker thread(s)"
        );
    }
}

/// One 1000-replica sharded run at planet scale, rendered to bytes:
/// 50 shards x 20 replicas, lazily streamed diurnal think-time traffic,
/// crash faults remapped per shard.
fn ext_scale_sharded_json() -> String {
    use moe_cluster::{
        run_sharded_stream, ClusterConfig, FaultPlan, RoutePolicy, ShardPlan, WorkloadSpec,
    };
    use moe_gpusim::perfmodel::PerfModel;
    use moe_model::registry::olmoe_1b_7b;

    let model = PerfModel::h100(olmoe_1b_7b());
    let plan = ShardPlan::single_region(50, 20);
    let mut cfg = ClusterConfig {
        policy: RoutePolicy::LeastOutstanding,
        seed: 42,
        ..ClusterConfig::default()
    };
    cfg.router.ttft_timeout_s = 2.0;
    let spec = WorkloadSpec::diurnal_users(100_000, 300.0, 2_500);
    let faults = FaultPlan::random_crashes(42, plan.replicas(), 15.0, 10, 5.0);
    let report = run_sharded_stream(&model, 2048, &cfg, &plan, &faults, &spec, 42);
    moe_json::to_string(&report)
}

/// The ext-scale determinism gate: the merged report of a 1000-replica
/// sharded diurnal run must render byte-identically for `MOE_THREADS` =
/// 1, 2 and 8 *and* across repeated runs at the same count. This is the
/// contract that makes `moe-par` sharding invisible: per-shard seeds
/// derive from the shard index (not the executor schedule) and the
/// merge folds shard reports in shard order.
#[test]
fn ext_scale_sharded_run_is_byte_identical_across_thread_counts() {
    let _guard = worker_override_lock();
    let mut renders = Vec::new();
    for threads in [1usize, 1, 2, 8] {
        moe_par::set_workers_for_test(threads);
        renders.push((threads, ext_scale_sharded_json()));
    }
    moe_par::set_workers_for_test(0);
    assert!(renders[0].1.contains("\"events\""));
    for (threads, render) in &renders[1..] {
        assert_eq!(
            &renders[0].1, render,
            "ext-scale sharded report differs between 1 and {threads} worker thread(s)"
        );
    }
}

/// Statistical sanity of streaming aggregation: percentiles read from
/// the cluster's log-bucketed histograms must agree with exact
/// percentiles computed from the retained per-request rows, within the
/// histogram's resolution (buckets grow ~2.2% per step; 5% leaves slack
/// for rank rounding).
#[test]
fn streaming_percentiles_match_exact_within_histogram_error() {
    use moe_cluster::{
        generate, ClusterConfig, ClusterSim, FaultPlan, RoutePolicy, TenantSpec, WorkloadSpec,
    };
    use moe_gpusim::perfmodel::PerfModel;
    use moe_model::registry::olmoe_1b_7b;

    let model = PerfModel::h100(olmoe_1b_7b());
    let spec = WorkloadSpec::poisson(
        60.0,
        600,
        TenantSpec::uniform("t", 1.0, (128, 512), (16, 64)),
    );
    let trace = generate(&spec, 7);
    let cfg = ClusterConfig {
        replicas: 4,
        policy: RoutePolicy::LeastOutstanding,
        seed: 7,
        retain_outputs: true,
        ..ClusterConfig::default()
    };
    let report = ClusterSim::sized_for(&model, 2048, cfg, FaultPlan::none(), trace)
        .run(&mut moe_trace::Tracer::disabled());
    assert_eq!(report.completed, report.submitted);
    assert_eq!(report.outputs.len(), report.completed);

    let ttft: Vec<f64> = report.outputs.iter().map(|o| o.ttft_s()).collect();
    let e2e: Vec<f64> = report.outputs.iter().map(|o| o.e2e_s()).collect();
    let close = |streamed: f64, exact: f64, what: &str| {
        assert!(
            (streamed - exact).abs() <= 0.05 * exact.abs() + 1e-9,
            "{what}: streamed {streamed} vs exact {exact}"
        );
    };
    for (p, streamed, what) in [
        (50.0, report.ttft.p50_s, "ttft p50"),
        (95.0, report.ttft.p95_s, "ttft p95"),
        (99.0, report.ttft.p99_s, "ttft p99"),
    ] {
        close(streamed, moe_runtime::metrics::percentile(&ttft, p), what);
    }
    for (p, streamed, what) in [
        (50.0, report.e2e.p50_s, "e2e p50"),
        (95.0, report.e2e.p95_s, "e2e p95"),
        (99.0, report.e2e.p99_s, "e2e p99"),
    ] {
        close(streamed, moe_runtime::metrics::percentile(&e2e, p), what);
    }
}
