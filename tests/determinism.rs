//! Tier-1 determinism gate: the same experiment run twice in one process
//! must produce byte-identical JSON reports.
//!
//! This is the end-to-end check behind the `no-unseeded-rng` and
//! `no-wall-clock` lint rules: if any entropy or host-timing leaked into
//! the pipeline (model init, placement, cost model, report rendering),
//! the second run would differ somewhere in the rendered bytes.

/// Reduced-scale Fig. 5 sweep (batch x top-k throughput grid), twice.
#[test]
fn fig5_fast_is_byte_identical_across_runs() {
    let render = || {
        let report = moe_bench::run_experiment("fig5", true).expect("fig5 is registered");
        moe_json::to_string_pretty(&report)
    };
    let first = render();
    let second = render();
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "fig5 fast sweep is not deterministic: rendered JSON differs between runs"
    );
}

/// The report also survives a parse round-trip unchanged, so the bytes on
/// disk are a faithful, stable encoding of the measured grid.
#[test]
fn fig5_fast_report_roundtrips_exactly() {
    let report = moe_bench::run_experiment("fig5", true).expect("fig5 is registered");
    let json = moe_json::to_string_pretty(&report);
    let back: moe_bench::ExperimentReport = moe_json::from_str(&json).expect("parses back");
    assert_eq!(moe_json::to_string_pretty(&back), json);
}
