//! Cross-crate integration tests: the whole stack exercised through the
//! umbrella crate — real execution, serving, speculative decoding,
//! quantization and the performance model working together.

use moe_inference_bench::engine::generate::{generate, GenerateParams};
use moe_inference_bench::engine::model::MoeTransformer;
use moe_inference_bench::engine::prune::prune_transformer;
use moe_inference_bench::engine::spec::speculative_generate;
use moe_inference_bench::engine::weights::ModelWeights;
use moe_inference_bench::gpusim::device::Cluster;
use moe_inference_bench::gpusim::parallel::ParallelPlan;
use moe_inference_bench::gpusim::perfmodel::{EngineOptions, PerfModel};
use moe_inference_bench::model::registry;
use moe_inference_bench::model::{PruneKind, PruneSpec};
use moe_inference_bench::runtime::liveserver::LiveServer;
use moe_inference_bench::runtime::scheduler::SchedulerConfig;
use moe_inference_bench::tensor::Precision;

#[test]
fn generation_is_end_to_end_deterministic() {
    let run = || {
        let mut m = MoeTransformer::new(registry::tiny_test_model(8, 2), 7);
        generate(&mut m, &[1, 2, 3, 4], GenerateParams::greedy(20)).tokens
    };
    assert_eq!(run(), run());
}

#[test]
fn serving_speculation_and_batching_agree_on_outputs() {
    // Three independent paths to the same greedy tokens: plain generation,
    // speculative decoding, and the continuous-batching live server.
    let prompt = vec![10usize, 20, 30, 40];
    let max_new = 15;

    let vanilla = generate(
        &mut MoeTransformer::new(registry::tiny_test_model(8, 2), 7),
        &prompt,
        GenerateParams::greedy(max_new),
    )
    .tokens;

    let spec = speculative_generate(
        &mut MoeTransformer::new(registry::tiny_test_model(8, 2), 7),
        &mut MoeTransformer::new(registry::tiny_test_model(4, 1), 99),
        &prompt,
        max_new,
        3,
    )
    .tokens;

    let mut server = LiveServer::new(
        MoeTransformer::new(registry::tiny_test_model(8, 2), 7),
        SchedulerConfig::default(),
    );
    let id = server.submit(prompt.clone(), max_new);
    let served = server.run().remove(&id).expect("request completed");

    assert_eq!(vanilla, spec);
    assert_eq!(vanilla, served);
}

#[test]
fn pruned_and_quantized_models_run_through_the_server() {
    let cfg = registry::tiny_test_model(8, 2);
    let mut weights = ModelWeights::init(&cfg, 5);
    weights.quantize(Precision::Int8);
    let mut model = MoeTransformer::with_weights(cfg, weights);
    prune_transformer(&mut model, PruneSpec::new(PruneKind::InterExpert, 0.25));

    let mut server = LiveServer::new(model, SchedulerConfig::default());
    let id = server.submit(vec![1, 2, 3], 8);
    let out = server.run().remove(&id).expect("request completed");
    assert_eq!(out.len(), 8);
    assert!(out.iter().all(|&t| t < 256));
}

#[test]
fn perf_model_consistent_with_memory_model() {
    // Any run() that succeeds must have a fitting memory footprint, and
    // OOM-failing runs must report a deficit.
    for model in registry::llms() {
        for gpus in [1usize, 2, 4] {
            let perf = PerfModel::new(
                model.clone(),
                Cluster::h100_node(gpus),
                EngineOptions::default().with_plan(ParallelPlan::tensor(gpus)),
            )
            .expect("valid plan");
            match perf.run(16, 512, 512, &mut moe_trace::Tracer::disabled(), 0) {
                Ok(r) => {
                    assert!(r.throughput_tok_s > 0.0);
                    assert!(perf.check_memory(16, 1024).is_ok());
                }
                Err(oom) => {
                    assert!(oom.required_bytes > oom.capacity_bytes, "{oom}");
                }
            }
        }
    }
}

#[test]
fn more_gpus_never_slower_under_tp() {
    for model in [registry::olmoe_1b_7b(), registry::qwen15_moe_a27b()] {
        let mut last = 0.0;
        for gpus in [1usize, 2, 4] {
            let perf = PerfModel::new(
                model.clone(),
                Cluster::h100_node(gpus),
                EngineOptions::default().with_plan(ParallelPlan::tensor(gpus)),
            )
            .expect("valid plan");
            let t = perf
                .run(16, 512, 512, &mut moe_trace::Tracer::disabled(), 0)
                .expect("fits")
                .throughput_tok_s;
            assert!(
                t >= last * 0.98,
                "{} at {gpus} GPUs: {t} < {last}",
                model.name
            );
            last = t;
        }
    }
}

#[test]
fn paper_formulas_hold_across_the_roster() {
    for model in registry::llms() {
        let Ok(perf) = PerfModel::new(
            model.clone(),
            Cluster::h100_node(4),
            EngineOptions::default().with_plan(ParallelPlan::tensor(4)),
        ) else {
            continue;
        };
        let r = perf
            .run(8, 256, 128, &mut moe_trace::Tracer::disabled(), 0)
            .expect("fits on 4 GPUs");
        // Eq. 2.
        let expect = 8.0 * (256.0 + 128.0) / r.e2e_s;
        assert!(
            (r.throughput_tok_s - expect).abs() / expect < 1e-9,
            "{}",
            model.name
        );
        // Eq. 1 (per-sequence ITL definition).
        let expect_itl = (r.e2e_s - r.ttft_s) / 127.0;
        assert!((r.itl_s - expect_itl).abs() < 1e-12, "{}", model.name);
    }
}
