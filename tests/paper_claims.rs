//! The paper's headline conclusions, checked end-to-end against the
//! regenerated experiments (the "Conclusion" section's claims).

use moe_bench::experiments::{fig03, fig10, fig13, fig15, fig17, sweep59};
use moe_tensor::Precision;

#[test]
fn conclusion_fp8_gives_20_to_30_percent() {
    // "the Nvidia H100 delivers superior performance with FP8 quantization,
    //  providing 20-30% throughput improvements over FP16"
    let series = fig10::batch_series(true);
    let (_, f16, f8) = series.last().copied().expect("non-empty");
    let gain = f8 / f16 - 1.0;
    assert!((0.15..0.55).contains(&gain), "fp8 gain {gain}");
}

#[test]
fn conclusion_active_experts_primary_lever() {
    // "active expert count represents the primary optimization lever with
    //  single-expert configurations achieving 50-80% higher throughput"
    let grid = sweep59::run_grid(false);
    let k1 = sweep59::at(&grid, 3584, 32, 1).expect("fits");
    let k8 = sweep59::at(&grid, 3584, 32, 8).expect("fits");
    assert!(k1 / k8 > 1.3, "single-expert advantage {}", k1 / k8);
}

#[test]
fn conclusion_vlms_slower_than_llms() {
    // "vision-language models exhibit substantially larger latencies
    //  compared to text-only models" — compare the VL2 language twins:
    // DeepSeek-VL2-Small shares DeepSeek-V2-Lite's language model.
    use moe_bench::experiments::fig04;
    let llms = fig03::measure(true);
    let vlms = fig04::measure(true);
    let lite = &llms
        .iter()
        .find(|r| r.0 == "DeepSeek-V2-Lite")
        .expect("present")
        .2;
    let small = &vlms
        .iter()
        .find(|r| r.0 == "DeepSeek-VL2-Small")
        .expect("present")
        .1;
    // The two figures use different batch/length workloads; normalize the
    // prefill cost per *batched prompt token* (counting the 576 image
    // tokens each VLM sample carries).
    let lite_tokens = (fig03::BATCH * fig03::IN_LEN) as f64;
    let small_tokens = (fig04::BATCH * (fig04::IN_LEN + 576)) as f64;
    let lite_ttft_per_tok = lite.ttft_s / lite_tokens;
    let small_ttft_per_tok = small.ttft_s / small_tokens;
    assert!(
        small_ttft_per_tok > lite_ttft_per_tok,
        "VLM {small_ttft_per_tok} vs LLM {lite_ttft_per_tok} per prompt token"
    );
}

#[test]
fn conclusion_tp_preferred_over_pp_and_ep() {
    let s = fig13::sweep(&moe_model::registry::olmoe_1b_7b(), Precision::F16);
    let tp4 = fig13::at(&s, "TP", false, 4).expect("measured");
    let tp4ep = fig13::at(&s, "TP", true, 4).expect("measured");
    let pp4 = fig13::at(&s, "PP", false, 4).expect("measured");
    assert!(tp4 > tp4ep && tp4ep > pp4);
}

#[test]
fn conclusion_balanced_models_route_uniformly() {
    let rs = fig15::measure(true);
    let molmoe = rs.iter().find(|r| r.model == "MolmoE-1B").expect("present");
    let dsvl = rs
        .iter()
        .find(|r| r.model == "DeepSeek-VL2")
        .expect("present");
    assert!(molmoe.mean_imbalance > dsvl.mean_imbalance);
}

#[test]
fn conclusion_frontier_shape() {
    // Small models excel in throughput/latency; large MoEs dominate
    // accuracy at the cost of runtime efficiency.
    let ps = fig17::measure(true);
    let by_acc = ps
        .iter()
        .max_by(|a, b| a.avg_accuracy.partial_cmp(&b.avg_accuracy).expect("finite"))
        .expect("non-empty");
    let by_tput = ps
        .iter()
        .max_by(|a, b| {
            a.throughput_tok_s
                .partial_cmp(&b.throughput_tok_s)
                .expect("finite")
        })
        .expect("non-empty");
    assert_ne!(by_acc.model, by_tput.model, "no free lunch on the frontier");
    assert!(by_acc.e2e_s > by_tput.e2e_s);
}
