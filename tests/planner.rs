//! Tier-1 planner gate: the planner's outputs are always feasible, and
//! beam search is provably exhaustive-equivalent when its width covers
//! the shape grid.

use moe_cluster::{generate, TenantSpec, WorkloadSpec};
use moe_model::registry::{mixtral_8x7b, olmoe_1b_7b};
use moe_model::ModelConfig;
use moe_plan::{
    plan, score::build_engine, score::operating_batch, sketch_of, FleetSpec, PlannerSpec,
    SearchMode, SearchSpace, SloSpec,
};

fn spec_for(model: ModelConfig, devices: usize, seed: u64, mode: SearchMode) -> PlannerSpec {
    PlannerSpec {
        model,
        draft: None,
        fleet: FleetSpec::h100(devices),
        workload: WorkloadSpec::poisson(
            15.0,
            40,
            TenantSpec::uniform("chat", 1.0, (128, 512), (32, 128)),
        ),
        slo: SloSpec::latency(1.0, 0.05),
        space: SearchSpace::minimal(),
        mode,
        refine_top_k: 3,
        seed,
    }
}

/// Property-style seeded sweep: across models, fleet sizes and seeds,
/// every configuration the planner returns (frontier, refined, and the
/// recommendation) validates cleanly against the model and runs at its
/// operating batch without hitting the OOM wall.
#[test]
fn planner_never_returns_an_infeasible_config() {
    for model in [olmoe_1b_7b, mixtral_8x7b] {
        for devices in [1usize, 2, 4] {
            for seed in [3u64, 17, 92] {
                let spec = spec_for(model(), devices, seed, SearchMode::Exhaustive);
                let report = match plan(&spec) {
                    Ok(r) => r,
                    Err(e) => panic!("{} on {devices} devices failed: {e}", spec.model.name),
                };
                let trace = generate(&spec.workload, spec.seed);
                let sketch = sketch_of(&trace);
                let configs = report
                    .frontier
                    .iter()
                    .map(|c| c.config)
                    .chain(report.refined.iter().map(|r| r.config))
                    .chain(std::iter::once(report.recommended.config));
                for config in configs {
                    assert!(
                        config.devices() <= devices,
                        "{} overflows fleet",
                        config.label()
                    );
                    let (engine, model_cfg) = build_engine(&spec, &config).unwrap_or_else(|e| {
                        panic!("planner returned infeasible {}: {e:?}", config.label())
                    });
                    assert!(
                        config.plan.validate(&model_cfg).is_empty(),
                        "planner returned plan-invalid {}",
                        config.label()
                    );
                    let batch = operating_batch(&engine, &config, &sketch);
                    engine
                        .run(
                            batch,
                            sketch.mean_input,
                            sketch.mean_output,
                            &mut moe_trace::Tracer::disabled(),
                            0,
                        )
                        .unwrap_or_else(|e| {
                            panic!("planner returned OOM config {}: {e}", config.label())
                        });
                }
            }
        }
    }
}

/// Beam search with width >= the shape count must emit a byte-identical
/// frontier (and the same recommendation) as exhaustive scoring, on the
/// same seed. The grid here is 24 shapes x 2 completions <= 64 points.
#[test]
fn beam_frontier_json_matches_exhaustive_on_small_grid() {
    for seed in [5u64, 41] {
        let exhaustive = plan(&spec_for(olmoe_1b_7b(), 4, seed, SearchMode::Exhaustive))
            .expect("exhaustive plan succeeds");
        let beam = plan(&spec_for(
            olmoe_1b_7b(),
            4,
            seed,
            SearchMode::Beam { width: 64 },
        ))
        .expect("beam plan succeeds");
        assert_eq!(
            beam.counts.pruned_by_width, 0,
            "width 64 must cover the whole shape grid"
        );
        assert_eq!(
            moe_json::to_string(&exhaustive.frontier),
            moe_json::to_string(&beam.frontier),
            "seed {seed}: beam frontier JSON differs from exhaustive"
        );
        assert_eq!(exhaustive.recommended, beam.recommended);
        // Enumeration bookkeeping is mode-independent.
        assert_eq!(exhaustive.counts.shapes, beam.counts.shapes);
        assert_eq!(exhaustive.counts.enumerated, beam.counts.enumerated);
    }
}

/// The full planner report replays byte-identically from the same spec
/// and seed (workload materialization, search, and refinement are all
/// seed-derived).
#[test]
fn plan_report_replays_byte_identically() {
    let run = || {
        let report =
            plan(&spec_for(mixtral_8x7b(), 2, 29, SearchMode::Exhaustive)).expect("plan succeeds");
        moe_json::to_string(&report)
    };
    assert_eq!(run(), run());
}
