//! Tier-1 gate: the workspace must lint clean under `moe-lint`.
//!
//! This runs the same pass as the `moe-lint` binary and the CI step, so a
//! violation fails `cargo test` locally before it ever reaches CI.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = moe_lint::lint_workspace(root).expect("workspace sources readable");
    assert!(
        diags.is_empty(),
        "moe-lint found {} violation(s):\n{}",
        diags.len(),
        moe_lint::render_human(&diags)
    );
}
