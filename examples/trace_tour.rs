//! A tour of `moe-trace`: trace a cost-model run and a serving run onto
//! one simulated timeline, then render every view the crate offers.
//!
//! ```bash
//! cargo run --release --example trace_tour
//! ```
//!
//! Writes `trace_tour.json` (load it at <https://ui.perfetto.dev>) and
//! prints the flame summary plus a latency histogram. See
//! `docs/OBSERVABILITY.md` for how to read the output.

use moe_gpusim::perfmodel::PerfModel;
use moe_model::registry::olmoe_1b_7b;
use moe_runtime::request::Request;
use moe_runtime::simserver::SimServer;
use moe_trace::{
    chrome_trace_json, flame_summary, Category, Histogram, MemorySink, Tracer, BENCH_TRACK,
    ENGINE_TRACK,
};

fn main() -> std::io::Result<()> {
    let mut tracer = Tracer::new(Box::new(MemorySink::new()));
    tracer.name_track(ENGINE_TRACK, "engine");
    tracer.name_track(BENCH_TRACK, "tour");

    // 1. Trace a pure cost-model run: one prefill + 127 decode steps,
    //    each decomposed into kernel/communication spans.
    let model = PerfModel::h100(olmoe_1b_7b());
    let run = model
        .run(8, 512, 128, &mut tracer, ENGINE_TRACK)
        .expect("OLMoE fits on one H100");
    tracer.span_with(
        BENCH_TRACK,
        Category::Bench,
        "static batch (cost model)",
        0.0,
        run.e2e_s,
        vec![("batch", 8usize.into())],
    );
    println!(
        "cost model: ttft {:.1} ms, e2e {:.3} s, {:.0} tok/s",
        run.ttft_s * 1e3,
        run.e2e_s,
        run.throughput_tok_s
    );

    // 2. Advance the base so the next simulation tiles after the first
    //    instead of overlapping it at t = 0.
    tracer.advance(run.e2e_s);

    // 3. Trace a serving run: scheduler decisions, per-request lanes and
    //    KV counters join the engine spans.
    let mut server = SimServer::sized_for(PerfModel::h100(olmoe_1b_7b()), 1024);
    for i in 0..12 {
        server.submit(Request::new(256, 64).at(0.05 * i as f64));
    }
    let report = server.run(&mut tracer);
    tracer.span_with(
        BENCH_TRACK,
        Category::Bench,
        "poisson-ish serving",
        0.0,
        report.makespan_s,
        vec![("requests", 12usize.into())],
    );
    tracer.advance(report.makespan_s);
    println!(
        "serving: {} requests in {:.3} s, ttft p50 {:.1} ms / p99 {:.1} ms",
        report.outputs.len(),
        report.makespan_s,
        report.ttft.p50_s * 1e3,
        report.ttft.p99_s * 1e3
    );

    // 4. The histogram type behind the report's percentiles, standalone.
    let mut hist = Histogram::new();
    for out in &report.outputs {
        hist.record(out.first_token_s - out.arrival_s);
    }
    println!("{}", hist.render_ms("ttft"));

    // 5. Render: Chrome-trace JSON for Perfetto + text flame summary.
    let events = tracer.snapshot();
    std::fs::write(
        "trace_tour.json",
        chrome_trace_json(&events, tracer.tracks()),
    )?;
    println!("\n{}", flame_summary(&events, tracer.tracks()));
    println!("wrote trace_tour.json — open it at https://ui.perfetto.dev");
    Ok(())
}
