//! Quickstart: run a real MoE forward pass on a down-scaled model, inspect
//! routing, then ask the performance model a deployment question about the
//! full-size Mixtral-8x7B.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use moe_inference_bench::engine::generate::{generate, GenerateParams};
use moe_inference_bench::engine::model::MoeTransformer;
use moe_inference_bench::gpusim::device::Cluster;
use moe_inference_bench::gpusim::parallel::ParallelPlan;
use moe_inference_bench::gpusim::perfmodel::{EngineOptions, PerfModel};
use moe_inference_bench::model::registry;
use moe_inference_bench::tensor::Precision;

fn main() {
    // --- 1. A real (tiny) MoE transformer: 8 experts, top-2 routing. ---
    let config = registry::tiny_test_model(8, 2);
    let mut model = MoeTransformer::new(config, 42);
    model.enable_stats();

    let prompt = [3usize, 14, 15, 92, 65];
    let generated = generate(&mut model, &prompt, GenerateParams::greedy(16));
    println!("prompt tokens:    {prompt:?}");
    println!("generated tokens: {:?}", generated.tokens);

    let stats = model.take_stats().expect("stats enabled");
    println!(
        "expert routing: {} assignments, layer-0 imbalance {:.2}, entropy {:.2}",
        stats.total_assignments(),
        stats.imbalance(0),
        stats.normalized_entropy(0),
    );

    // --- 2. The performance model: how would Mixtral-8x7B serve on a
    //        4xH100 node? ---
    let mixtral = registry::mixtral_8x7b();
    let perf = PerfModel::new(
        mixtral,
        Cluster::h100_node(4),
        EngineOptions::default().with_plan(ParallelPlan::tensor(4)),
    )
    .expect("valid placement");

    println!("\nMixtral-8x7B on 4xH100 (TP4, fp16):");
    for batch in [1usize, 16, 64] {
        let run = perf
            .run(batch, 1024, 1024, &mut moe_trace::Tracer::disabled(), 0)
            .expect("fits");
        println!(
            "  batch {batch:>3}: TTFT {:>7.1} ms | ITL {:>6.2} ms | {:>8.0} tok/s",
            run.ttft_s * 1e3,
            run.itl_s * 1e3,
            run.throughput_tok_s
        );
    }

    // --- 3. And at FP8? ---
    let perf8 = PerfModel::new(
        registry::mixtral_8x7b(),
        Cluster::h100_node(4),
        EngineOptions::default()
            .with_plan(ParallelPlan::tensor(4))
            .with_precision(Precision::Fp8E4M3),
    )
    .expect("valid placement");
    let f16 = perf
        .run(64, 1024, 1024, &mut moe_trace::Tracer::disabled(), 0)
        .expect("fits")
        .throughput_tok_s;
    let f8 = perf8
        .run(64, 1024, 1024, &mut moe_trace::Tracer::disabled(), 0)
        .expect("fits")
        .throughput_tok_s;
    println!(
        "\nFP8 vs FP16 at batch 64: {:.0} vs {:.0} tok/s ({:+.1}%)",
        f8,
        f16,
        100.0 * (f8 / f16 - 1.0)
    );
}
