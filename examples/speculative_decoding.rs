//! Speculative decoding, both for real and analytically:
//!
//! 1. run *functional* speculative decoding on down-scaled models and
//!    verify the lossless-greedy guarantee plus acceptance accounting;
//! 2. reproduce the Figure-12 draft-model comparison with the performance
//!    model (Qwen3-30B-A3B target, four Qwen3 drafts).
//!
//! ```text
//! cargo run --release --example speculative_decoding
//! ```

use moe_inference_bench::engine::generate::{generate, GenerateParams};
use moe_inference_bench::engine::model::MoeTransformer;
use moe_inference_bench::engine::spec::speculative_generate;
use moe_inference_bench::gpusim::device::Cluster;
use moe_inference_bench::gpusim::parallel::ParallelPlan;
use moe_inference_bench::gpusim::perfmodel::{EngineOptions, PerfModel};
use moe_inference_bench::gpusim::spec::{acceptance_rate, spec_run, SpecParams};
use moe_inference_bench::model::registry;

fn main() {
    // --- 1. Functional speculative decoding on the real executor. ---
    let prompt = vec![3usize, 14, 15];
    let mut target = MoeTransformer::new(registry::tiny_test_model(8, 2), 7);
    let vanilla = generate(&mut target, &prompt, GenerateParams::greedy(24));

    println!("functional speculative decoding (tiny models, greedy):");
    for gamma in [1usize, 2, 4] {
        let mut tgt = MoeTransformer::new(registry::tiny_test_model(8, 2), 7);
        let mut draft = MoeTransformer::new(registry::tiny_test_model(4, 1), 123);
        let spec = speculative_generate(&mut tgt, &mut draft, &prompt, 24, gamma);
        assert_eq!(spec.tokens, vanilla.tokens, "losslessness violated");
        println!(
            "  gamma={gamma}: {} cycles, acceptance {:>5.1}%, {:.2} tokens/cycle — output \
             identical to vanilla greedy",
            spec.cycles,
            spec.acceptance_rate() * 100.0,
            spec.tokens_per_cycle()
        );
    }

    // --- 2. The Figure-12 study through the performance model. ---
    let placed = |cfg: moe_inference_bench::model::ModelConfig| {
        PerfModel::new(
            cfg,
            Cluster::h100_node(2),
            EngineOptions::default().with_plan(ParallelPlan::tensor(2)),
        )
        .expect("TP2 valid")
    };
    let target = placed(registry::qwen3_30b_a3b());
    let vanilla_tput = target
        .run(16, 1024, 256, &mut moe_trace::Tracer::disabled(), 0)
        .expect("fits")
        .throughput_tok_s;
    println!(
        "\nQwen3-30B-A3B on 2xH100 — vanilla: {vanilla_tput:.0} tok/s; with drafts (gamma=3):"
    );

    for draft_cfg in registry::draft_models() {
        let alpha = acceptance_rate(&draft_cfg, target.config());
        let draft = placed(draft_cfg.clone());
        let r = spec_run(
            &target,
            &draft,
            SpecParams { gamma: 3, alpha },
            16,
            1024,
            256,
        )
        .expect("fits");
        println!(
            "  {:<11} alpha={alpha:.2}: {:>6.0} tok/s ({:+.1}% vs vanilla)",
            draft_cfg.name,
            r.throughput_tok_s,
            100.0 * (r.throughput_tok_s / vanilla_tput - 1.0)
        );
    }
}
