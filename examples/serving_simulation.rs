//! Serving simulation: a bursty request stream served by the
//! continuous-batching scheduler over the H100 performance model, plus a
//! live (real-execution) serving demo proving the scheduler preserves
//! outputs under memory pressure.
//!
//! ```text
//! cargo run --release --example serving_simulation
//! ```

use moe_inference_bench::engine::model::MoeTransformer;
use moe_inference_bench::gpusim::perfmodel::PerfModel;
use moe_inference_bench::model::registry;
use moe_inference_bench::runtime::liveserver::LiveServer;
use moe_inference_bench::runtime::request::Request;
use moe_inference_bench::runtime::scheduler::SchedulerConfig;
use moe_inference_bench::runtime::simserver::SimServer;

fn main() {
    // --- 1. Simulated serving: 48 requests in three bursts on one H100
    //        running OLMoE-1B-7B. ---
    let model = PerfModel::h100(registry::olmoe_1b_7b());
    let mut server = SimServer::sized_for(model, 4096);
    for burst in 0..3 {
        for i in 0..16 {
            let prompt = 256 + (i % 4) * 256;
            server.submit(Request::new(prompt, 256).at(burst as f64 * 5.0));
        }
    }
    let report = server.run(&mut moe_trace::Tracer::disabled());
    println!("simulated serving of 48 bursty requests (OLMoE-1B-7B, 1xH100):");
    println!(
        "  makespan        {:>8.2} s over {} engine steps",
        report.makespan_s, report.steps
    );
    println!("  throughput      {:>8.0} tok/s", report.throughput_tok_s);
    println!("  requests/s      {:>8.2}", report.requests_per_s);
    println!(
        "  TTFT   mean {:>7.0} ms   p95 {:>7.0} ms",
        report.ttft.mean_s * 1e3,
        report.ttft.p95_s * 1e3
    );
    println!(
        "  ITL    mean {:>7.1} ms   p95 {:>7.1} ms",
        report.itl.mean_s * 1e3,
        report.itl.p95_s * 1e3
    );
    println!("  preemptions     {:>8}", report.preemptions);

    // --- 2. Live serving on the real executor with a deliberately tiny
    //        KV pool: preemption and recompute must not change outputs. ---
    let tiny = registry::tiny_test_model(8, 2);
    let cfg = SchedulerConfig {
        max_running: 4,
        max_batched_tokens: 256,
        block_tokens: 4,
        total_blocks: 12, // tight: forces preemption
    };
    let mut live = LiveServer::new(MoeTransformer::new(tiny.clone(), 42), cfg);
    let prompts: Vec<Vec<usize>> = vec![vec![5, 6, 7, 8], vec![9, 10, 11, 12], vec![1, 2, 3]];
    let ids: Vec<_> = prompts.iter().map(|p| live.submit(p.clone(), 12)).collect();
    let outputs = live.run();

    println!("\nlive serving under memory pressure (real forward passes):");
    for (prompt, id) in prompts.iter().zip(&ids) {
        let served = &outputs[id];
        let reference =
            LiveServer::reference(&mut MoeTransformer::new(tiny.clone(), 42), prompt, 12);
        let matches = *served == reference;
        println!(
            "  prompt {:?} -> {} tokens, matches standalone generation: {}",
            prompt,
            served.len(),
            matches
        );
        assert!(matches, "scheduling must never change outputs");
    }
}
