//! Capacity planner: for each model in the paper's roster, find the
//! smallest H100 deployment (GPU count x precision) that serves a target
//! workload, and report the expected metrics — the kind of deployment
//! question the paper's OOM-boundary analysis (Section 5) informs.
//!
//! ```text
//! cargo run --release --example capacity_planner [batch] [in_len] [out_len]
//! ```

use moe_inference_bench::gpusim::device::Cluster;
use moe_inference_bench::gpusim::parallel::ParallelPlan;
use moe_inference_bench::gpusim::perfmodel::{EngineOptions, PerfModel};
use moe_inference_bench::model::registry;
use moe_inference_bench::tensor::Precision;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let batch = args.first().copied().unwrap_or(32);
    let input = args.get(1).copied().unwrap_or(1024);
    let output = args.get(2).copied().unwrap_or(1024);

    println!("capacity plan for batch {batch}, {input} in / {output} out tokens:\n");
    println!(
        "{:<22} {:>5} {:>5} | {:>10} {:>9} {:>9} | {:>11}",
        "model", "prec", "GPUs", "tok/s", "TTFT ms", "ITL ms", "KV headroom"
    );

    for model in registry::llms() {
        let mut planned = None;
        'search: for precision in [Precision::F16, Precision::Fp8E4M3] {
            for gpus in [1usize, 2, 4, 8] {
                let plan = ParallelPlan::tensor(gpus);
                let Ok(perf) = PerfModel::new(
                    model.clone(),
                    Cluster::h100_node(gpus),
                    EngineOptions::default()
                        .with_plan(plan)
                        .with_precision(precision),
                ) else {
                    continue;
                };
                if let Ok(run) =
                    perf.run(batch, input, output, &mut moe_trace::Tracer::disabled(), 0)
                {
                    let fp = perf
                        .check_memory(batch, input + output)
                        .expect("run succeeded, memory must fit");
                    planned = Some((precision, gpus, run, fp.headroom()));
                    break 'search;
                }
            }
        }
        match planned {
            Some((precision, gpus, run, headroom)) => println!(
                "{:<22} {:>5} {:>5} | {:>10.0} {:>9.0} {:>9.2} | {:>8.1} GB",
                model.name,
                precision.label(),
                gpus,
                run.throughput_tok_s,
                run.ttft_s * 1e3,
                run.itl_s * 1e3,
                headroom / 1e9,
            ),
            None => println!(
                "{:<22} does not fit on 8 H100s at this workload",
                model.name
            ),
        }
    }

    println!(
        "\n(preference order: fp16 before fp8, fewest GPUs first — change the \
         loop order to prefer cheaper quantized deployments instead)"
    );
}
